package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"testing"

	"streamad"
	"streamad/internal/core"
	"streamad/internal/ensemble"
	"streamad/internal/score"
)

// stubDetector mirrors the monitor test stub: ready after 2 steps, high
// score when the first element exceeds 1; panics on wrong dimensionality.
type stubDetector struct {
	dim   int
	steps int
}

func (d *stubDetector) Step(s []float64) (core.Result, bool) {
	if len(s) != d.dim {
		panic("dim mismatch")
	}
	d.steps++
	if d.steps <= 2 {
		return core.Result{}, false
	}
	v := 0.05
	if s[0] > 1 {
		v = 0.95
	}
	return core.Result{Score: v, Nonconformity: v}, true
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return &stubDetector{dim: 2}, nil },
		NewThresholder: func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.5}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func observe(t *testing.T, ts *httptest.Server, stream string, vec []float64) (ObserveResponse, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{"vector": vec})
	resp, err := http.Post(ts.URL+"/v1/streams/"+stream+"/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ObserveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestObserveLifecycle(t *testing.T) {
	ts := newTestServer(t)
	// Warmup steps report not-ready.
	for i := 0; i < 2; i++ {
		out, code := observe(t, ts, "dev1", []float64{0, 0})
		if code != http.StatusOK || out.Ready {
			t.Fatalf("warmup step %d: code=%d ready=%v", i, code, out.Ready)
		}
	}
	// Normal step: ready, no alert.
	out, _ := observe(t, ts, "dev1", []float64{0, 0})
	if !out.Ready || out.Alert || out.Score != 0.05 {
		t.Fatalf("normal = %+v", out)
	}
	// Anomalous step: alert.
	out, _ = observe(t, ts, "dev1", []float64{9, 0})
	if !out.Alert || out.Score != 0.95 {
		t.Fatalf("anomaly = %+v", out)
	}
	if out.Threshold != 0.5 {
		t.Fatalf("threshold = %v", out.Threshold)
	}
}

func TestStatsAndList(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		observe(t, ts, "a", []float64{0, 0})
	}
	observe(t, ts, "a", []float64{5, 0})
	observe(t, ts, "b", []float64{0, 0})

	resp, err := http.Get(ts.URL + "/v1/streams/a")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Steps != 6 || stats.Ready != 4 || stats.Alerts != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	resp, err = http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list []streamListEntry
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Fatalf("list = %+v", list)
	}
}

func TestObserveErrors(t *testing.T) {
	ts := newTestServer(t)
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/v1/streams/x/observe", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d", resp.StatusCode)
	}
	// Empty vector.
	if _, code := observe(t, ts, "x", nil); code != http.StatusBadRequest {
		t.Fatalf("empty vector = %d", code)
	}
	// Wrong dimensionality (detector panics → 400).
	observe(t, ts, "x", []float64{1, 2})
	if _, code := observe(t, ts, "x", []float64{1, 2, 3}); code != http.StatusBadRequest {
		t.Fatalf("dim mismatch = %d", code)
	}
	// Unknown stream stats.
	resp, err = http.Get(ts.URL + "/v1/streams/never-seen")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream = %d", resp.StatusCode)
	}
	// Unknown route and method.
	resp, err = http.Get(ts.URL + "/v1/streams/x/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET observe = %d", resp.StatusCode)
	}
}

func TestStreamLimit(t *testing.T) {
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return &stubDetector{dim: 1}, nil },
		MaxStreams:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i, want := range []int{http.StatusOK, http.StatusOK, http.StatusServiceUnavailable} {
		body, _ := json.Marshal(map[string]interface{}{"vector": []float64{1}})
		resp, err := http.Post(fmt.Sprintf("%s/v1/streams/s%d/observe", ts.URL, i), "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("stream %d = %d, want %d", i, resp.StatusCode, want)
		}
	}
}

func TestFactoryError(t *testing.T) {
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return nil, errors.New("boom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, _ := json.Marshal(map[string]interface{}{"vector": []float64{1}})
	resp, err := http.Post(ts.URL+"/v1/streams/x/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("factory error = %d", resp.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("NewDetector required")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 4; i++ {
		observe(t, ts, "m1", []float64{0, 0})
	}
	observe(t, ts, "m1", []float64{7, 0}) // alert
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, line := range []string{
		`streamad_steps_total{stream="m1"} 5`,
		`streamad_ready_steps_total{stream="m1"} 3`,
		`streamad_alerts_total{stream="m1"} 1`,
	} {
		if !bytes.Contains([]byte(body), []byte(line)) {
			t.Fatalf("metrics missing %q in:\n%s", line, body)
		}
	}
}

// parseSample splits one Prometheus exposition sample line into its
// metric name and label map, unquoting label values with the inverse of
// the %q encoding the server uses.
func parseSample(line string) (name string, labels map[string]string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		// Label-less sample: "name value".
		name, _, ok := strings.Cut(line, " ")
		if !ok || name == "" {
			return "", nil, fmt.Errorf("malformed sample %q", line)
		}
		return name, map[string]string{}, nil
	}
	name = line[:brace]
	labels = make(map[string]string)
	rest := line[brace+1:]
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("no key=value in %q", rest)
		}
		key := rest[:eq]
		quoted, e := strconv.QuotedPrefix(rest[eq+1:])
		if e != nil {
			return "", nil, fmt.Errorf("bad quoting after %q in %q: %v", key, line, e)
		}
		val, e := strconv.Unquote(quoted)
		if e != nil {
			return "", nil, e
		}
		labels[key] = val
		rest = rest[eq+1+len(quoted):]
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "} ") {
			return name, labels, nil
		}
		return "", nil, fmt.Errorf("malformed label block tail %q in %q", rest, line)
	}
}

// TestMetricsExposition asserts the /metrics output is well-formed
// Prometheus text: every sample's family is introduced by a HELP/TYPE
// pair, stream labels come out sorted, and ids containing quotes and
// newlines are escaped so they survive a parse round trip.
func TestMetricsExposition(t *testing.T) {
	ts := newTestServer(t)
	ids := []string{"plain", `a"quote`, "b\nline"}
	for _, id := range ids {
		for i := 0; i < 3; i++ {
			body, _ := json.Marshal(map[string]interface{}{"vector": []float64{0, 0}})
			resp, err := http.Post(ts.URL+"/v1/streams/"+url.PathEscape(id)+"/observe", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("observe %q = %d", id, resp.StatusCode)
			}
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	helps := map[string]bool{}
	types := map[string]bool{}
	streamsPerFamily := map[string][]string{}
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if h, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, _ := strings.Cut(h, " ")
			if text == "" {
				t.Errorf("HELP without text: %q", line)
			}
			helps[name] = true
			continue
		}
		if ty, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(ty, " ")
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("TYPE with unknown kind: %q", line)
			}
			types[name] = true
			continue
		}
		name, labels, err := parseSample(line)
		if err != nil {
			t.Fatalf("unparseable sample: %v", err)
		}
		// Histogram _bucket/_sum/_count samples hang off the family name.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && types[f] {
				family = f
				break
			}
		}
		if !helps[family] || !types[family] {
			t.Errorf("sample %q precedes its HELP/TYPE pair", line)
		}
		if strings.HasPrefix(name, "streamad_ingest_") ||
			strings.HasPrefix(name, "streamad_tier_") ||
			strings.HasPrefix(name, "streamad_pool_") ||
			strings.HasPrefix(name, "streamad_metrics_") {
			continue // process-level families carry no stream label
		}
		stream, ok := labels["stream"]
		if !ok {
			t.Errorf("sample without stream label: %q", line)
		}
		streamsPerFamily[name] = append(streamsPerFamily[name], stream)
	}
	for fam, streams := range streamsPerFamily {
		if !sort.StringsAreSorted(streams) {
			t.Errorf("family %s streams not sorted: %q", fam, streams)
		}
		want := append([]string{}, ids...)
		sort.Strings(want)
		if fmt.Sprint(streams) != fmt.Sprint(want) {
			t.Errorf("family %s streams = %q, want %q (quote/newline ids must round-trip)", fam, streams, want)
		}
	}
	if len(streamsPerFamily) != 3 {
		t.Fatalf("expected 3 sample families, got %v", streamsPerFamily)
	}
}

// infThresholder always reports a non-finite boundary, like the quantile
// policy before it has seen enough scores.
type infThresholder struct{}

func (infThresholder) Alert(float64) bool { return false }
func (infThresholder) Threshold() float64 { return math.Inf(1) }
func (infThresholder) Name() string       { return "inf" }

// nanMemberDet is a Stepper whose member stats carry non-finite floats.
type nanMemberDet struct{ stubDetector }

func (d *nanMemberDet) MemberStats() []ensemble.MemberStat {
	return []ensemble.MemberStat{
		{Index: 0, Label: "stub+sw+regular+avg", Ready: d.steps, Weight: math.NaN(), LastScore: math.Inf(-1)},
	}
}

// TestStatsGuardsNonFiniteValues is the regression test for the
// stats-endpoint counterpart of the +Inf-threshold observe bug: a
// non-finite threshold, member weight or member score must never abort
// the JSON encoding of GET /v1/streams/{id}.
func TestStatsGuardsNonFiniteValues(t *testing.T) {
	srv, err := New(Config{
		NewDetector:    func(string) (Stepper, error) { return &nanMemberDet{stubDetector{dim: 2}}, nil },
		NewThresholder: func(string) score.Thresholder { return infThresholder{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, _ := json.Marshal(map[string]interface{}{"vector": []float64{0, 0}})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/streams/s/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/streams/s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) == 0 {
		t.Fatal("empty stats body: non-finite value killed the encoder")
	}
	if strings.Contains(string(raw), "Inf") || strings.Contains(string(raw), "NaN") {
		t.Fatalf("non-finite value leaked into JSON: %s", raw)
	}
	var stats StatsResponse
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats not valid JSON: %v (%s)", err, raw)
	}
	if stats.Threshold != 0 {
		t.Fatalf("non-finite threshold not dropped: %+v", stats)
	}
	if len(stats.Members) != 1 || stats.Members[0].Weight != 0 || stats.Members[0].LastScore != 0 {
		t.Fatalf("non-finite member floats not zeroed: %+v", stats.Members)
	}
}

// TestEnsembleThroughServer runs a real 3-member ensemble behind the
// HTTP API: aggregated scores come back per vector, the stats endpoint
// grows per-member rows, and /metrics exposes the member families.
func TestEnsembleThroughServer(t *testing.T) {
	const spec = "ensemble(knn+sw+regular+avg, arima+sw+regular+avg, knn+ures+regular+avg; agg=perf, prune=-8)"
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) {
			return streamad.NewFromSpec(spec, streamad.Config{
				Channels: 3, Window: 8, TrainSize: 20, WarmupVectors: 25, Seed: 3,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ready := 0
	for _, v := range testVectors(80) {
		if observeDirect(t, srv, "s", v).Ready {
			ready++
		}
	}
	if ready == 0 {
		t.Fatal("ensemble never scored through the server")
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/s", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Members) != 3 {
		t.Fatalf("stats carry %d member rows, want 3: %+v", len(stats.Members), stats)
	}
	var weightSum float64
	for i, m := range stats.Members {
		if m.Index != i || m.Spec == "" || m.Ready == 0 {
			t.Fatalf("member row %d looks dead: %+v", i, m)
		}
		weightSum += m.Weight
	}
	if math.Abs(weightSum-1) > 1e-9 {
		t.Fatalf("member weights sum to %v, want 1", weightSum)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := rec.Body.String()
	for _, family := range []string{
		"streamad_ensemble_member_ready_total",
		"streamad_ensemble_member_fine_tunes_total",
		"streamad_ensemble_member_agreement",
		"streamad_ensemble_member_weight",
		"streamad_ensemble_member_disabled",
	} {
		if !strings.Contains(text, "# HELP "+family+" ") ||
			!strings.Contains(text, "# TYPE "+family+" ") ||
			!strings.Contains(text, family+`{stream="s",member="0",spec="knn+sw+regular+avg"}`) {
			t.Fatalf("metrics missing member family %s:\n%s", family, text)
		}
	}
}

// TestMetricsStreamCap pins the per-stream cardinality bound: with a cap
// of 2, only the first two streams by id get per-stream series, the
// omitted gauge counts the rest, and the aggregate families still render.
func TestMetricsStreamCap(t *testing.T) {
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return &stubDetector{dim: 2}, nil },
		NewThresholder: func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.5}
		},
		MetricsStreamCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	for _, id := range []string{"cap-a", "cap-b", "cap-c", "cap-d"} {
		observe(t, ts, id, []float64{1, 2})
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`streamad_steps_total{stream="cap-a"} 1`,
		`streamad_steps_total{stream="cap-b"} 1`,
		"streamad_metrics_streams_omitted 2",
		"streamad_ingest_shed_total", // aggregate families are never capped
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
	for _, absent := range []string{`stream="cap-c"`, `stream="cap-d"`} {
		if strings.Contains(body, absent) {
			t.Fatalf("metrics contains %q beyond the cap:\n%s", absent, body)
		}
	}
}

// TestMetricsStreamCapDefault checks the zero-config default keeps every
// stream when the fleet is small and the omitted gauge reads zero.
func TestMetricsStreamCapDefault(t *testing.T) {
	ts := newTestServer(t)
	observe(t, ts, "only", []float64{1, 2})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, "streamad_metrics_streams_omitted 0") {
		t.Fatalf("omitted gauge missing or nonzero:\n%s", body)
	}
	if !strings.Contains(body, `streamad_steps_total{stream="only"} 1`) {
		t.Fatalf("per-stream series missing under default cap:\n%s", body)
	}
}
