package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"streamad/internal/core"
	"streamad/internal/score"
)

// stubDetector mirrors the monitor test stub: ready after 2 steps, high
// score when the first element exceeds 1; panics on wrong dimensionality.
type stubDetector struct {
	dim   int
	steps int
}

func (d *stubDetector) Step(s []float64) (core.Result, bool) {
	if len(s) != d.dim {
		panic("dim mismatch")
	}
	d.steps++
	if d.steps <= 2 {
		return core.Result{}, false
	}
	v := 0.05
	if s[0] > 1 {
		v = 0.95
	}
	return core.Result{Score: v, Nonconformity: v}, true
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return &stubDetector{dim: 2}, nil },
		NewThresholder: func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.5}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func observe(t *testing.T, ts *httptest.Server, stream string, vec []float64) (ObserveResponse, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{"vector": vec})
	resp, err := http.Post(ts.URL+"/v1/streams/"+stream+"/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ObserveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestObserveLifecycle(t *testing.T) {
	ts := newTestServer(t)
	// Warmup steps report not-ready.
	for i := 0; i < 2; i++ {
		out, code := observe(t, ts, "dev1", []float64{0, 0})
		if code != http.StatusOK || out.Ready {
			t.Fatalf("warmup step %d: code=%d ready=%v", i, code, out.Ready)
		}
	}
	// Normal step: ready, no alert.
	out, _ := observe(t, ts, "dev1", []float64{0, 0})
	if !out.Ready || out.Alert || out.Score != 0.05 {
		t.Fatalf("normal = %+v", out)
	}
	// Anomalous step: alert.
	out, _ = observe(t, ts, "dev1", []float64{9, 0})
	if !out.Alert || out.Score != 0.95 {
		t.Fatalf("anomaly = %+v", out)
	}
	if out.Threshold != 0.5 {
		t.Fatalf("threshold = %v", out.Threshold)
	}
}

func TestStatsAndList(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		observe(t, ts, "a", []float64{0, 0})
	}
	observe(t, ts, "a", []float64{5, 0})
	observe(t, ts, "b", []float64{0, 0})

	resp, err := http.Get(ts.URL + "/v1/streams/a")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Steps != 6 || stats.Ready != 4 || stats.Alerts != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	resp, err = http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list []streamListEntry
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != "a" || list[1].ID != "b" {
		t.Fatalf("list = %+v", list)
	}
}

func TestObserveErrors(t *testing.T) {
	ts := newTestServer(t)
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/v1/streams/x/observe", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d", resp.StatusCode)
	}
	// Empty vector.
	if _, code := observe(t, ts, "x", nil); code != http.StatusBadRequest {
		t.Fatalf("empty vector = %d", code)
	}
	// Wrong dimensionality (detector panics → 400).
	observe(t, ts, "x", []float64{1, 2})
	if _, code := observe(t, ts, "x", []float64{1, 2, 3}); code != http.StatusBadRequest {
		t.Fatalf("dim mismatch = %d", code)
	}
	// Unknown stream stats.
	resp, err = http.Get(ts.URL + "/v1/streams/never-seen")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream = %d", resp.StatusCode)
	}
	// Unknown route and method.
	resp, err = http.Get(ts.URL + "/v1/streams/x/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET observe = %d", resp.StatusCode)
	}
}

func TestStreamLimit(t *testing.T) {
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return &stubDetector{dim: 1}, nil },
		MaxStreams:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i, want := range []int{http.StatusOK, http.StatusOK, http.StatusServiceUnavailable} {
		body, _ := json.Marshal(map[string]interface{}{"vector": []float64{1}})
		resp, err := http.Post(fmt.Sprintf("%s/v1/streams/s%d/observe", ts.URL, i), "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("stream %d = %d, want %d", i, resp.StatusCode, want)
		}
	}
}

func TestFactoryError(t *testing.T) {
	srv, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return nil, errors.New("boom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, _ := json.Marshal(map[string]interface{}{"vector": []float64{1}})
	resp, err := http.Post(ts.URL+"/v1/streams/x/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("factory error = %d", resp.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("NewDetector required")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 4; i++ {
		observe(t, ts, "m1", []float64{0, 0})
	}
	observe(t, ts, "m1", []float64{7, 0}) // alert
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, line := range []string{
		`streamad_steps_total{stream="m1"} 5`,
		`streamad_ready_steps_total{stream="m1"} 3`,
		`streamad_alerts_total{stream="m1"} 1`,
	} {
		if !bytes.Contains([]byte(body), []byte(line)) {
			t.Fatalf("metrics missing %q in:\n%s", line, body)
		}
	}
}
