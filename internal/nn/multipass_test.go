package nn

import (
	"math/rand"
	"testing"
)

// TestMultiPassGradientAccumulation verifies the USAD-critical property:
// one parameter set can run several forward passes, backpropagate each of
// them through its own context, and accumulate the correct total gradient
// — equal to the numeric gradient of the summed loss.
func TestMultiPassGradientAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{2, 3, 2}, Tanh{}, Identity{}, rng)
	x1 := []float64{0.4, -0.9}
	x2 := []float64{-1.1, 0.3}
	t1 := []float64{1, 0}
	t2 := []float64{0, 1}

	totalLoss := func() float64 {
		y1 := m.Predict(x1)
		l1, _ := MSELoss(y1, t1, nil)
		y2 := m.Predict(x2)
		l2, _ := MSELoss(y2, t2, nil)
		return l1 + l2
	}

	// Analytic: two passes, two backwards, gradients accumulate.
	y1, ctx1 := m.Forward(x1)
	_, g1 := MSELoss(y1, t1, nil)
	y2, ctx2 := m.Forward(x2)
	_, g2 := MSELoss(y2, t2, nil)
	m.Backward(ctx1, g1)
	m.Backward(ctx2, g2)

	for pi, p := range m.Params() {
		for i := range p.W {
			num := numericGrad(p.W, i, totalLoss)
			if !almostEq(p.G[i], num, 1e-5) {
				t.Fatalf("param %d grad[%d] = %v, numeric %v", pi, i, p.G[i], num)
			}
		}
	}
}

// TestChainedMLPGradient verifies backprop through a composition of two
// MLPs (encoder→decoder), the structure every autoencoder here uses.
func TestChainedMLPGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := NewMLP([]int{3, 4, 2}, Sigmoid{}, Identity{}, rng)
	dec := NewMLP([]int{2, 4, 3}, Sigmoid{}, Identity{}, rng)
	x := []float64{0.2, -0.5, 0.8}

	loss := func() float64 {
		out := dec.Predict(enc.Predict(x))
		l, _ := MSELoss(out, x, nil)
		return l
	}

	z, encCtx := enc.Forward(x)
	out, decCtx := dec.Forward(z)
	_, g := MSELoss(out, x, nil)
	gz := dec.Backward(decCtx, g)
	enc.Backward(encCtx, gz)

	for pi, p := range append(enc.Params(), dec.Params()...) {
		for i := range p.W {
			num := numericGrad(p.W, i, loss)
			if !almostEq(p.G[i], num, 1e-5) {
				t.Fatalf("param %d grad[%d] = %v, numeric %v", pi, i, p.G[i], num)
			}
		}
	}
}

// TestLinearCloneIsDeep verifies layer clones share nothing.
func TestLinearCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(2, 2, rng)
	c := l.Clone()
	l.Weight.W[0] += 100
	l.Bias.G[0] = 42
	if c.Weight.W[0] == l.Weight.W[0] || c.Bias.G[0] == 42 {
		t.Fatal("Linear clone aliases storage")
	}
}

// TestZeroGradClears verifies ZeroGrad leaves weights intact.
func TestZeroGradClears(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{2, 2}, Identity{}, Identity{}, rng)
	y, ctx := m.Forward([]float64{1, 1})
	_, g := MSELoss(y, []float64{0, 0}, nil)
	m.Backward(ctx, g)
	w := m.Layers[0].Weight.W[0]
	m.ZeroGrad()
	for _, p := range m.Params() {
		for _, gv := range p.G {
			if gv != 0 {
				t.Fatal("ZeroGrad left a gradient")
			}
		}
	}
	if m.Layers[0].Weight.W[0] != w {
		t.Fatal("ZeroGrad modified weights")
	}
}
