package nn

// Clone returns a deep copy of the parameter (weights and gradients).
func (p *Param) Clone() *Param {
	q := &Param{W: make([]float64, len(p.W)), G: make([]float64, len(p.G))}
	copy(q.W, p.W)
	copy(q.G, p.G)
	return q
}

// Clone returns a deep copy of the layer.
func (l *Linear) Clone() *Linear {
	return &Linear{In: l.In, Out: l.Out, Weight: l.Weight.Clone(), Bias: l.Bias.Clone()}
}

// Clone returns a deep copy of the MLP (activations are stateless and
// shared).
func (m *MLP) Clone() *MLP {
	c := &MLP{Acts: make([]Activation, len(m.Acts))}
	copy(c.Acts, m.Acts)
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, l.Clone())
	}
	return c
}
