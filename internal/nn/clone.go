package nn

// Clone returns a deep copy of the parameter (weights and gradients).
func (p *Param) Clone() *Param {
	q := &Param{W: make([]float64, len(p.W)), G: make([]float64, len(p.G))}
	copy(q.W, p.W)
	copy(q.G, p.G)
	return q
}

// Clone returns a deep copy of the layer.
func (l *Linear) Clone() *Linear {
	return &Linear{In: l.In, Out: l.Out, Weight: l.Weight.Clone(), Bias: l.Bias.Clone()}
}

// Clone returns a deep copy of the MLP (activations are stateless and
// shared). The clone gets its own scratch context, so original and clone
// can run on different goroutines.
func (m *MLP) Clone() *MLP {
	c := &MLP{Acts: make([]Activation, len(m.Acts))}
	copy(c.Acts, m.Acts)
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, l.Clone())
	}
	c.finish()
	return c
}

// CloneOptimizer deep-copies an optimizer's state for a cloned parameter
// set: moment slices keyed by oldParams[i] are re-keyed to newParams[i].
// The two slices must list the respective models' parameters in the same
// order. It returns nil for optimizer types it does not know, signaling
// the caller to fall back to a fresh optimizer.
func CloneOptimizer(opt Optimizer, oldParams, newParams []*Param) Optimizer {
	if len(oldParams) != len(newParams) {
		panic("nn: CloneOptimizer parameter count mismatch")
	}
	remap := make(map[*Param]*Param, len(oldParams))
	for i, p := range oldParams {
		remap[p] = newParams[i]
	}
	cloneMap := func(src map[*Param][]float64) map[*Param][]float64 {
		if src == nil {
			return nil
		}
		dst := make(map[*Param][]float64, len(src))
		for p, s := range src {
			np, ok := remap[p]
			if !ok {
				np = p
			}
			c := make([]float64, len(s))
			copy(c, s)
			dst[np] = c
		}
		return dst
	}
	switch o := opt.(type) {
	case *Adam:
		c := &Adam{LR: o.LR, Beta1: o.Beta1, Beta2: o.Beta2, Eps: o.Eps,
			t: o.t, m: cloneMap(o.m), v: cloneMap(o.v)}
		if c.m == nil {
			c.m = make(map[*Param][]float64)
		}
		if c.v == nil {
			c.v = make(map[*Param][]float64)
		}
		return c
	case *SGD:
		return &SGD{LR: o.LR, Momentum: o.Momentum, velocity: cloneMap(o.velocity)}
	default:
		return nil
	}
}
