package nn

import "math"

// Scaler standardizes feature vectors with per-dimension mean and standard
// deviation estimated from a training set. Models refresh their scaler at
// every Fit, so the normalization is part of the model parameters θ_model
// and adapts together with the weights after concept drift.
type Scaler struct {
	mean []float64
	std  []float64
}

// NewScaler returns an identity scaler for the given dimensionality.
func NewScaler(dim int) *Scaler {
	s := &Scaler{mean: make([]float64, dim), std: make([]float64, dim)}
	for i := range s.std {
		s.std[i] = 1
	}
	return s
}

// Fit estimates per-dimension moments from the training set. Dimensions
// with (near-)zero variance get unit scale so Transform stays finite.
func (s *Scaler) Fit(set [][]float64) {
	if len(set) == 0 {
		return
	}
	dim := len(s.mean)
	for i := range s.mean {
		s.mean[i] = 0
	}
	n := 0
	for _, x := range set {
		if len(x) != dim {
			continue
		}
		n++
		for i, v := range x {
			s.mean[i] += v
		}
	}
	if n == 0 {
		return
	}
	inv := 1 / float64(n)
	for i := range s.mean {
		s.mean[i] *= inv
	}
	for i := range s.std {
		s.std[i] = 0
	}
	for _, x := range set {
		if len(x) != dim {
			continue
		}
		for i, v := range x {
			d := v - s.mean[i]
			s.std[i] += d * d
		}
	}
	for i := range s.std {
		s.std[i] = math.Sqrt(s.std[i] * inv)
		if s.std[i] < 1e-8 {
			s.std[i] = 1
		}
	}
}

// Transform standardizes x into dst (allocated when nil) and returns dst.
//
//streamad:hotpath
func (s *Scaler) Transform(x, dst []float64) []float64 {
	if dst == nil {
		//streamad:ignore hotalloc first-call allocation when the caller passes nil dst
		dst = make([]float64, len(x))
	}
	for i, v := range x {
		dst[i] = (v - s.mean[i]) / s.std[i]
	}
	return dst
}

// Inverse maps a standardized vector back to the original space into dst
// (allocated when nil).
//
//streamad:hotpath
func (s *Scaler) Inverse(z, dst []float64) []float64 {
	if dst == nil {
		//streamad:ignore hotalloc first-call allocation when the caller passes nil dst
		dst = make([]float64, len(z))
	}
	for i, v := range z {
		dst[i] = v*s.std[i] + s.mean[i]
	}
	return dst
}

// InverseSub maps a standardized vector back using the trailing part of
// the scaler's moments (offset elements in), for models whose output
// covers only the final rows of the feature vector.
//
//streamad:hotpath
func (s *Scaler) InverseSub(z, dst []float64, offset int) []float64 {
	if dst == nil {
		//streamad:ignore hotalloc first-call allocation when the caller passes nil dst
		dst = make([]float64, len(z))
	}
	for i, v := range z {
		dst[i] = v*s.std[offset+i] + s.mean[offset+i]
	}
	return dst
}

// Clone returns a deep copy.
func (s *Scaler) Clone() *Scaler {
	c := &Scaler{mean: make([]float64, len(s.mean)), std: make([]float64, len(s.std))}
	copy(c.mean, s.mean)
	copy(c.std, s.std)
	return c
}
