package nn

import "math"

// Activation is an element-wise nonlinearity with a context-passing
// forward/backward pair. The Into variants write into caller-provided
// buffers and are what the zero-allocation training kernels use; the
// plain Forward/Backward pair allocates and remains for convenience.
type Activation interface {
	// Forward applies the activation and returns (y, ctx); ctx carries
	// whatever Backward needs (typically y itself).
	Forward(x []float64) (y, ctx []float64)
	// Backward returns ∂L/∂x given ctx and ∂L/∂y.
	Backward(ctx, gradOut []float64) []float64
	// ForwardInto applies the activation, writing into y (len(y) must
	// equal len(x)), and returns the backward context. The context
	// aliases x or y — the caller must keep the aliased buffer intact
	// until the matching BackwardInto. For activations whose context is
	// the pre-activation input (ReLU), y must not alias x.
	ForwardInto(x, y []float64) (ctx []float64)
	// BackwardInto writes ∂L/∂x into gradIn given ctx and ∂L/∂y.
	// gradIn may alias gradOut.
	BackwardInto(ctx, gradOut, gradIn []float64)
	// Name identifies the activation.
	Name() string
}

// Sigmoid is σ(x) = 1/(1+e^{−x}).
type Sigmoid struct{}

// Forward implements Activation; ctx is the output y (σ' = y(1−y)).
func (s Sigmoid) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	return y, s.ForwardInto(x, y)
}

// ForwardInto implements Activation; ctx is y.
//
//streamad:hotpath
func (Sigmoid) ForwardInto(x, y []float64) []float64 {
	for i, v := range x {
		y[i] = 1 / (1 + math.Exp(-v))
	}
	return y
}

// Backward implements Activation.
func (s Sigmoid) Backward(ctx, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	s.BackwardInto(ctx, gradOut, g)
	return g
}

// BackwardInto implements Activation.
//
//streamad:hotpath
func (Sigmoid) BackwardInto(ctx, gradOut, gradIn []float64) {
	for i, go_ := range gradOut {
		y := ctx[i]
		gradIn[i] = go_ * y * (1 - y)
	}
}

// Name implements Activation.
func (Sigmoid) Name() string { return "sigmoid" }

// ReLU is max(0, x).
type ReLU struct{}

// Forward implements Activation; ctx is a copy of the input x.
func (ReLU) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	ctx = make([]float64, len(x))
	copy(ctx, x)
	for i, v := range x {
		if v > 0 {
			y[i] = v
		}
	}
	return y, ctx
}

// ForwardInto implements Activation; ctx is x itself (no copy), so the
// caller must preserve x until BackwardInto and y must not alias x.
//
//streamad:hotpath
func (ReLU) ForwardInto(x, y []float64) []float64 {
	for i, v := range x {
		if v > 0 {
			y[i] = v
		} else {
			y[i] = 0
		}
	}
	return x
}

// Backward implements Activation.
func (r ReLU) Backward(ctx, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	r.BackwardInto(ctx, gradOut, g)
	return g
}

// BackwardInto implements Activation.
//
//streamad:hotpath
func (ReLU) BackwardInto(ctx, gradOut, gradIn []float64) {
	for i, go_ := range gradOut {
		if ctx[i] > 0 {
			gradIn[i] = go_
		} else {
			gradIn[i] = 0
		}
	}
}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Tanh is the hyperbolic tangent.
type Tanh struct{}

// Forward implements Activation; ctx is the output y (tanh' = 1−y²).
func (t Tanh) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	return y, t.ForwardInto(x, y)
}

// ForwardInto implements Activation; ctx is y.
//
//streamad:hotpath
func (Tanh) ForwardInto(x, y []float64) []float64 {
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// Backward implements Activation.
func (t Tanh) Backward(ctx, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	t.BackwardInto(ctx, gradOut, g)
	return g
}

// BackwardInto implements Activation.
//
//streamad:hotpath
func (Tanh) BackwardInto(ctx, gradOut, gradIn []float64) {
	for i, go_ := range gradOut {
		y := ctx[i]
		gradIn[i] = go_ * (1 - y*y)
	}
}

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// Identity passes values through unchanged (used for linear output layers).
type Identity struct{}

// Forward implements Activation.
func (Identity) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	copy(y, x)
	return y, nil
}

// ForwardInto implements Activation.
//
//streamad:hotpath
func (Identity) ForwardInto(x, y []float64) []float64 {
	copy(y, x)
	return nil
}

// Backward implements Activation.
func (Identity) Backward(_, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	copy(g, gradOut)
	return g
}

// BackwardInto implements Activation.
//
//streamad:hotpath
func (Identity) BackwardInto(_, gradOut, gradIn []float64) {
	copy(gradIn, gradOut)
}

// Name implements Activation.
func (Identity) Name() string { return "identity" }
