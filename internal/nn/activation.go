package nn

import "math"

// Activation is an element-wise nonlinearity with a context-passing
// forward/backward pair.
type Activation interface {
	// Forward applies the activation and returns (y, ctx); ctx carries
	// whatever Backward needs (typically y itself).
	Forward(x []float64) (y, ctx []float64)
	// Backward returns ∂L/∂x given ctx and ∂L/∂y.
	Backward(ctx, gradOut []float64) []float64
	// Name identifies the activation.
	Name() string
}

// Sigmoid is σ(x) = 1/(1+e^{−x}).
type Sigmoid struct{}

// Forward implements Activation; ctx is the output y (σ' = y(1−y)).
func (Sigmoid) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	for i, v := range x {
		y[i] = 1 / (1 + math.Exp(-v))
	}
	return y, y
}

// Backward implements Activation.
func (Sigmoid) Backward(ctx, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	for i, go_ := range gradOut {
		y := ctx[i]
		g[i] = go_ * y * (1 - y)
	}
	return g
}

// Name implements Activation.
func (Sigmoid) Name() string { return "sigmoid" }

// ReLU is max(0, x).
type ReLU struct{}

// Forward implements Activation; ctx is the input x.
func (ReLU) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	ctx = make([]float64, len(x))
	copy(ctx, x)
	for i, v := range x {
		if v > 0 {
			y[i] = v
		}
	}
	return y, ctx
}

// Backward implements Activation.
func (ReLU) Backward(ctx, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	for i, go_ := range gradOut {
		if ctx[i] > 0 {
			g[i] = go_
		}
	}
	return g
}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Tanh is the hyperbolic tangent.
type Tanh struct{}

// Forward implements Activation; ctx is the output y (tanh' = 1−y²).
func (Tanh) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y, y
}

// Backward implements Activation.
func (Tanh) Backward(ctx, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	for i, go_ := range gradOut {
		y := ctx[i]
		g[i] = go_ * (1 - y*y)
	}
	return g
}

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// Identity passes values through unchanged (used for linear output layers).
type Identity struct{}

// Forward implements Activation.
func (Identity) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, len(x))
	copy(y, x)
	return y, nil
}

// Backward implements Activation.
func (Identity) Backward(_, gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	copy(g, gradOut)
	return g
}

// Name implements Activation.
func (Identity) Name() string { return "identity" }
