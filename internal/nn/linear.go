package nn

import "math/rand"

// Linear is a fully connected layer y = W·x + b with W ∈ R^{out×in}.
type Linear struct {
	In, Out int
	Weight  *Param // row-major out×in
	Bias    *Param // out
}

// NewLinear returns a Glorot-initialized fully connected layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(in * out),
		Bias:   NewParam(out),
	}
	l.Weight.XavierInit(in, out, rng)
	return l
}

// Forward computes y = W·x + b and returns y along with the context
// (a copy of x) needed by Backward.
func (l *Linear) Forward(x []float64) (y, ctx []float64) {
	y = make([]float64, l.Out)
	l.ForwardInto(x, y)
	ctx = make([]float64, l.In)
	copy(ctx, x)
	return y, ctx
}

// ForwardInto computes y = W·x + b into the caller-provided y (length
// Out). Unlike Forward it keeps no context: the caller must preserve x
// itself until the matching BackwardInto. y must not alias x.
//
//streamad:hotpath
func (l *Linear) ForwardInto(x, y []float64) {
	if len(x) != l.In || len(y) != l.Out {
		panic("nn: Linear input dimension mismatch")
	}
	for o := 0; o < l.Out; o++ {
		row := l.Weight.W[o*l.In : (o+1)*l.In]
		s := l.Bias.W[o]
		for i, v := range x {
			s += row[i] * v
		}
		y[o] = s
	}
}

// Backward accumulates parameter gradients given the upstream gradient
// gradOut = ∂L/∂y and the context from the matching Forward call, and
// returns ∂L/∂x.
func (l *Linear) Backward(ctx, gradOut []float64) []float64 {
	gradIn := make([]float64, l.In)
	l.BackwardInto(ctx, gradOut, gradIn)
	return gradIn
}

// BackwardInto accumulates parameter gradients and writes ∂L/∂x into the
// caller-provided gradIn (length In, overwritten). x is the input of the
// matching ForwardInto call. gradIn must not alias x or gradOut.
//
//streamad:hotpath
func (l *Linear) BackwardInto(x, gradOut, gradIn []float64) {
	if len(gradOut) != l.Out || len(x) != l.In || len(gradIn) != l.In {
		panic("nn: Linear backward dimension mismatch")
	}
	for i := range gradIn {
		gradIn[i] = 0
	}
	for o, g := range gradOut {
		if g == 0 {
			continue
		}
		wrow := l.Weight.W[o*l.In : (o+1)*l.In]
		grow := l.Weight.G[o*l.In : (o+1)*l.In]
		l.Bias.G[o] += g
		for i, xv := range x {
			grow[i] += g * xv
			gradIn[i] += g * wrow[i]
		}
	}
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }
