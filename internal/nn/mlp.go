package nn

import "math/rand"

// MLP is a stack of fully connected layers with per-layer activations.
// It exposes a context-passing forward/backward pair so the same MLP can
// run several forward passes before backpropagating each of them (as the
// USAD encoder does).
type MLP struct {
	Layers []*Linear
	Acts   []Activation
}

// MLPContext carries the per-layer contexts of one forward pass.
type MLPContext struct {
	linCtx [][]float64
	actCtx [][]float64
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes [8,4,8]
// produces Linear(8→4)+act, Linear(4→8)+outAct. Hidden layers use act;
// the final layer uses outAct.
func NewMLP(sizes []int, act, outAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least one layer")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			m.Acts = append(m.Acts, act)
		} else {
			m.Acts = append(m.Acts, outAct)
		}
	}
	return m
}

// Forward runs a forward pass and returns the output with its context.
func (m *MLP) Forward(x []float64) ([]float64, *MLPContext) {
	ctx := &MLPContext{
		linCtx: make([][]float64, len(m.Layers)),
		actCtx: make([][]float64, len(m.Layers)),
	}
	h := x
	for i, l := range m.Layers {
		var lc, ac []float64
		h, lc = l.Forward(h)
		h, ac = m.Acts[i].Forward(h)
		ctx.linCtx[i] = lc
		ctx.actCtx[i] = ac
	}
	return h, ctx
}

// Backward backpropagates gradOut through the pass recorded in ctx,
// accumulating parameter gradients, and returns the input gradient.
func (m *MLP) Backward(ctx *MLPContext, gradOut []float64) []float64 {
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Acts[i].Backward(ctx.actCtx[i], g)
		g = m.Layers[i].Backward(ctx.linCtx[i], g)
	}
	return g
}

// Predict is Forward without keeping the context.
func (m *MLP) Predict(x []float64) []float64 {
	y, _ := m.Forward(x)
	return y
}

// Params returns all parameters of the MLP.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all parameter gradients.
func (m *MLP) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// InDim returns the input dimensionality.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output dimensionality.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }
