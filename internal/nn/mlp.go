package nn

import "math/rand"

// MLP is a stack of fully connected layers with per-layer activations.
// It exposes a context-passing forward/backward pair so the same MLP can
// run several forward passes before backpropagating each of them (as the
// USAD encoder does). Contexts own all per-pass scratch — see the package
// comment for the buffer-ownership rules.
type MLP struct {
	Layers []*Linear
	Acts   []Activation

	params  []*Param    //streamad:transient cached flat parameter list, rebuilt lazily by finish
	scratch *MLPContext //streamad:transient Predict's private context, rebuilt lazily by finish
}

// MLPContext carries the per-layer buffers of one forward pass: the
// input copy, pre- and post-activation vectors, the activation backward
// contexts and the per-layer input-gradient buffers. A context is
// allocated once (NewContext) and reused across passes; one context
// serves exactly one in-flight forward→backward pair at a time.
type MLPContext struct {
	in0    []float64   // copy of the pass input
	linOut [][]float64 // pre-activation per layer
	actOut [][]float64 // post-activation per layer (= next layer's input)
	actCtx [][]float64 // activation backward contexts (alias lin/actOut)
	grad   [][]float64 // input-gradient buffer per layer
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes [8,4,8]
// produces Linear(8→4)+act, Linear(4→8)+outAct. Hidden layers use act;
// the final layer uses outAct.
func NewMLP(sizes []int, act, outAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least one layer")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			m.Acts = append(m.Acts, act)
		} else {
			m.Acts = append(m.Acts, outAct)
		}
	}
	m.finish()
	return m
}

// finish builds the cached parameter list and the Predict scratch
// context. It must be called after Layers/Acts are assembled.
func (m *MLP) finish() {
	// Exact capacity: callers append to the returned Params slice, and a
	// full backing array forces those appends to copy instead of writing
	// into the cache.
	ps := make([]*Param, 0, len(m.Layers)*2)
	for _, l := range m.Layers {
		ps = append(ps, l.Weight, l.Bias)
	}
	m.params = ps
	m.scratch = m.NewContext()
}

// NewContext allocates a reusable forward/backward context sized for
// this MLP. Training code that needs several simultaneous passes over
// one parameter set (USAD's shared encoder) allocates one context per
// in-flight pass.
func (m *MLP) NewContext() *MLPContext {
	ctx := &MLPContext{
		in0:    make([]float64, m.Layers[0].In),
		linOut: make([][]float64, len(m.Layers)),
		actOut: make([][]float64, len(m.Layers)),
		actCtx: make([][]float64, len(m.Layers)),
		grad:   make([][]float64, len(m.Layers)),
	}
	for i, l := range m.Layers {
		ctx.linOut[i] = make([]float64, l.Out)
		ctx.actOut[i] = make([]float64, l.Out)
		ctx.grad[i] = make([]float64, l.In)
	}
	return ctx
}

// ForwardCtx runs a forward pass through ctx, allocation-free, and
// returns the output — which aliases ctx's last activation buffer and
// stays valid until the context's next forward pass.
//
//streamad:hotpath
func (m *MLP) ForwardCtx(ctx *MLPContext, x []float64) []float64 {
	if len(x) != m.Layers[0].In {
		panic("nn: MLP input dimension mismatch")
	}
	copy(ctx.in0, x)
	in := ctx.in0
	for i, l := range m.Layers {
		l.ForwardInto(in, ctx.linOut[i])
		ctx.actCtx[i] = m.Acts[i].ForwardInto(ctx.linOut[i], ctx.actOut[i])
		in = ctx.actOut[i]
	}
	return in
}

// BackwardCtx backpropagates gradOut through the pass recorded in ctx,
// accumulating parameter gradients, and returns the input gradient —
// which aliases ctx's first gradient buffer. gradOut is consumed: the
// output layer's activation backward runs in place on it.
//
//streamad:hotpath
func (m *MLP) BackwardCtx(ctx *MLPContext, gradOut []float64) []float64 {
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		m.Acts[i].BackwardInto(ctx.actCtx[i], g, g)
		in := ctx.in0
		if i > 0 {
			in = ctx.actOut[i-1]
		}
		m.Layers[i].BackwardInto(in, g, ctx.grad[i])
		g = ctx.grad[i]
	}
	return g
}

// Forward runs a forward pass through a freshly allocated context and
// returns the output with that context. Hot paths should hold a context
// and call ForwardCtx instead.
func (m *MLP) Forward(x []float64) ([]float64, *MLPContext) {
	ctx := m.NewContext()
	return m.ForwardCtx(ctx, x), ctx
}

// Backward backpropagates gradOut through the pass recorded in ctx,
// accumulating parameter gradients, and returns the input gradient.
// Like BackwardCtx it consumes gradOut in place.
func (m *MLP) Backward(ctx *MLPContext, gradOut []float64) []float64 {
	return m.BackwardCtx(ctx, gradOut)
}

// Predict is an allocation-free forward pass through the MLP's private
// scratch context. The returned slice is reused by the next Predict or
// ForwardCtx-on-scratch call; copy it to retain.
//
//streamad:hotpath
func (m *MLP) Predict(x []float64) []float64 {
	if m.scratch == nil {
		//streamad:ignore hotalloc one-time lazy build for zero-value MLPs; NewMLP pre-builds, so a warm Predict never takes this branch
		m.finish()
	}
	return m.ForwardCtx(m.scratch, x)
}

// Params returns all parameters of the MLP. The returned slice is cached
// and shared; callers must not modify it.
func (m *MLP) Params() []*Param {
	if m.params == nil {
		m.finish()
	}
	return m.params
}

// ZeroGrad clears all parameter gradients.
//
//streamad:hotpath
func (m *MLP) ZeroGrad() {
	//streamad:ignore hotalloc Params only allocates on its one-time lazy build; warm MLPs return the cached slice
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// InDim returns the input dimensionality.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output dimensionality.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }
