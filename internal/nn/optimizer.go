package nn

import "math"

// Optimizer updates parameters from their accumulated gradients. Step also
// clears the gradients it consumed.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
//
//streamad:hotpath
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum != 0 {
			if s.velocity == nil {
				//streamad:ignore hotalloc lazy one-time map init
				s.velocity = make(map[*Param][]float64)
			}
			v, ok := s.velocity[p]
			if !ok {
				//streamad:ignore hotalloc per-param velocity allocated once on first step
				v = make([]float64, len(p.W))
				s.velocity[p] = v
			}
			for i := range p.W {
				v[i] = s.Momentum*v[i] - s.LR*p.G[i]
				p.W[i] += v[i]
				p.G[i] = 0
			}
			continue
		}
		for i := range p.W {
			p.W[i] -= s.LR * p.G[i]
			p.G[i] = 0
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
	m     map[*Param][]float64
	v     map[*Param][]float64
}

// NewAdam returns an Adam optimizer with standard hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64)}
}

// Step implements Optimizer.
//
//streamad:hotpath
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			//streamad:ignore hotalloc per-param moment allocated once on first step
			m = make([]float64, len(p.W))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			//streamad:ignore hotalloc per-param moment allocated once on first step
			v = make([]float64, len(p.W))
			a.v[p] = v
		}
		for i := range p.W {
			g := p.G[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.W[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
			p.G[i] = 0
		}
	}
}

// MSELoss returns ½·mean((pred−target)²) and writes ∂L/∂pred into grad
// (allocated if nil). The ½ keeps the gradient simply (pred−target)/n.
//
//streamad:hotpath
func MSELoss(pred, target, grad []float64) (float64, []float64) {
	if len(pred) != len(target) {
		panic("nn: MSELoss length mismatch")
	}
	if grad == nil {
		//streamad:ignore hotalloc first-call allocation when the caller passes nil grad
		grad = make([]float64, len(pred))
	}
	n := float64(len(pred))
	var loss float64
	for i, p := range pred {
		d := p - target[i]
		loss += d * d
		grad[i] = d / n
	}
	return loss / (2 * n), grad
}
