package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// mlpState is the serializable form of an MLP: per-layer weights and
// biases plus activation names (validated on restore).
type mlpState struct {
	Sizes   []int
	Acts    []string
	Weights [][]float64
	Biases  [][]float64
}

// MarshalBinary implements encoding.BinaryMarshaler: a gob snapshot of
// the MLP's weights (optimizer state is not persisted; resumed training
// restarts its moment estimates).
func (m *MLP) MarshalBinary() ([]byte, error) {
	st := mlpState{}
	for i, l := range m.Layers {
		if i == 0 {
			st.Sizes = append(st.Sizes, l.In)
		}
		st.Sizes = append(st.Sizes, l.Out)
		w := make([]float64, len(l.Weight.W))
		copy(w, l.Weight.W)
		b := make([]float64, len(l.Bias.W))
		copy(b, l.Bias.W)
		st.Weights = append(st.Weights, w)
		st.Biases = append(st.Biases, b)
	}
	for _, a := range m.Acts {
		st.Acts = append(st.Acts, a.Name())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: encode MLP: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The receiver's
// architecture (layer sizes and activations) must match the snapshot.
func (m *MLP) UnmarshalBinary(data []byte) error {
	var st mlpState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode MLP: %w", err)
	}
	if len(st.Weights) != len(m.Layers) {
		return fmt.Errorf("nn: snapshot has %d layers, model has %d", len(st.Weights), len(m.Layers))
	}
	for i, l := range m.Layers {
		if len(st.Weights[i]) != len(l.Weight.W) || len(st.Biases[i]) != len(l.Bias.W) {
			return fmt.Errorf("nn: layer %d shape mismatch", i)
		}
		if st.Acts[i] != m.Acts[i].Name() {
			return fmt.Errorf("nn: layer %d activation %q != %q", i, st.Acts[i], m.Acts[i].Name())
		}
	}
	for i, l := range m.Layers {
		copy(l.Weight.W, st.Weights[i])
		copy(l.Bias.W, st.Biases[i])
		l.Weight.ZeroGrad()
		l.Bias.ZeroGrad()
	}
	return nil
}

// scalerState serializes both scaler kinds.
type scalerState struct {
	A []float64 // mean / lo
	B []float64 // std / scale
}

// MarshalBinary implements encoding.BinaryMarshaler for Scaler.
func (s *Scaler) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(scalerState{A: s.mean, B: s.std}); err != nil {
		return nil, fmt.Errorf("nn: encode scaler: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for Scaler.
func (s *Scaler) UnmarshalBinary(data []byte) error {
	var st scalerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode scaler: %w", err)
	}
	if len(st.A) != len(s.mean) {
		return fmt.Errorf("nn: scaler dim %d != %d", len(st.A), len(s.mean))
	}
	copy(s.mean, st.A)
	copy(s.std, st.B)
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for MinMaxScaler.
func (s *MinMaxScaler) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(scalerState{A: s.lo, B: s.scale}); err != nil {
		return nil, fmt.Errorf("nn: encode minmax scaler: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for MinMaxScaler.
func (s *MinMaxScaler) UnmarshalBinary(data []byte) error {
	var st scalerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode minmax scaler: %w", err)
	}
	if len(st.A) != len(s.lo) {
		return fmt.Errorf("nn: scaler dim %d != %d", len(st.A), len(s.lo))
	}
	copy(s.lo, st.A)
	copy(s.scale, st.B)
	return nil
}

// adamState is the serializable form of an Adam optimizer's training
// position: the step counter and the first/second moment estimates in the
// caller's parameter order.
type adamState struct {
	T int
	M [][]float64
	V [][]float64
}

// MarshalState snapshots the Adam step counter and moment estimates for
// params (in order), so a restored model's next fine-tune continues the
// exact optimizer trajectory instead of restarting the moments at zero.
func (a *Adam) MarshalState(params []*Param) ([]byte, error) {
	st := adamState{T: a.t}
	for _, p := range params {
		m := make([]float64, len(p.W))
		copy(m, a.m[p])
		v := make([]float64, len(p.W))
		copy(v, a.v[p])
		st.M = append(st.M, m)
		st.V = append(st.V, v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: encode adam: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores a snapshot produced by MarshalState against the
// same parameter list (same order, same shapes).
func (a *Adam) UnmarshalState(params []*Param, data []byte) error {
	var st adamState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode adam: %w", err)
	}
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: adam snapshot covers %d params, model has %d", len(st.M), len(params))
	}
	for i, p := range params {
		if len(st.M[i]) != len(p.W) || len(st.V[i]) != len(p.W) {
			return fmt.Errorf("nn: adam snapshot param %d length mismatch", i)
		}
	}
	a.t = st.T
	if a.m == nil {
		a.m = make(map[*Param][]float64)
	}
	if a.v == nil {
		a.v = make(map[*Param][]float64)
	}
	for i, p := range params {
		a.m[p] = append([]float64(nil), st.M[i]...)
		a.v[p] = append([]float64(nil), st.V[i]...)
	}
	return nil
}

// SaveOptimizer snapshots opt's state over params when the optimizer kind
// carries state (Adam); stateless optimizers return an empty snapshot.
func SaveOptimizer(opt Optimizer, params []*Param) ([]byte, error) {
	if a, ok := opt.(*Adam); ok {
		return a.MarshalState(params)
	}
	return []byte{}, nil
}

// LoadOptimizer restores a SaveOptimizer snapshot into opt. An empty
// snapshot leaves the optimizer untouched (fresh state).
func LoadOptimizer(opt Optimizer, params []*Param, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if a, ok := opt.(*Adam); ok {
		return a.UnmarshalState(params, data)
	}
	return fmt.Errorf("nn: optimizer snapshot for a stateless optimizer")
}
