package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// numericGrad computes ∂loss/∂w numerically by central differences.
func numericGrad(w []float64, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := w[i]
	w[i] = orig + h
	lp := loss()
	w[i] = orig - h
	lm := loss()
	w[i] = orig
	return (lp - lm) / (2 * h)
}

func TestLinearForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(2, 2, rng)
	copy(l.Weight.W, []float64{1, 2, 3, 4})
	copy(l.Bias.W, []float64{10, 20})
	y, _ := l.Forward([]float64{1, 1})
	if y[0] != 13 || y[1] != 27 {
		t.Fatalf("Forward = %v, want [13 27]", y)
	}
}

func TestLinearGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(3, 2, rng)
	x := []float64{0.5, -1.2, 2.0}
	target := []float64{1, -1}
	loss := func() float64 {
		y, _ := l.Forward(x)
		lv, _ := MSELoss(y, target, nil)
		return lv
	}
	// Analytic gradients.
	y, ctx := l.Forward(x)
	_, g := MSELoss(y, target, nil)
	gradIn := l.Backward(ctx, g)

	for i := range l.Weight.W {
		num := numericGrad(l.Weight.W, i, loss)
		if !almostEq(l.Weight.G[i], num, 1e-6) {
			t.Fatalf("weight grad[%d] = %v, numeric %v", i, l.Weight.G[i], num)
		}
	}
	for i := range l.Bias.W {
		num := numericGrad(l.Bias.W, i, loss)
		if !almostEq(l.Bias.G[i], num, 1e-6) {
			t.Fatalf("bias grad[%d] = %v, numeric %v", i, l.Bias.G[i], num)
		}
	}
	// Input gradient via perturbing x.
	for i := range x {
		num := numericGrad(x, i, loss)
		if !almostEq(gradIn[i], num, 1e-6) {
			t.Fatalf("input grad[%d] = %v, numeric %v", i, gradIn[i], num)
		}
	}
}

func TestActivationGradientChecks(t *testing.T) {
	acts := []Activation{Sigmoid{}, ReLU{}, Tanh{}, Identity{}}
	x := []float64{0.3, -0.7, 1.5, -2.2}
	target := []float64{0.1, 0.1, 0.1, 0.1}
	for _, act := range acts {
		act := act
		t.Run(act.Name(), func(t *testing.T) {
			loss := func() float64 {
				y, _ := act.Forward(x)
				lv, _ := MSELoss(y, target, nil)
				return lv
			}
			y, ctx := act.Forward(x)
			_, g := MSELoss(y, target, nil)
			gin := act.Backward(ctx, g)
			for i := range x {
				num := numericGrad(x, i, loss)
				if !almostEq(gin[i], num, 1e-6) {
					t.Fatalf("%s input grad[%d] = %v, numeric %v", act.Name(), i, gin[i], num)
				}
			}
		})
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{3, 4, 2}, Tanh{}, Identity{}, rng)
	x := []float64{0.1, -0.4, 0.9}
	target := []float64{0.5, -0.5}
	loss := func() float64 {
		y := m.Predict(x)
		lv, _ := MSELoss(y, target, nil)
		return lv
	}
	y, ctx := m.Forward(x)
	_, g := MSELoss(y, target, nil)
	m.Backward(ctx, g)
	for pi, p := range m.Params() {
		for i := range p.W {
			num := numericGrad(p.W, i, loss)
			if !almostEq(p.G[i], num, 1e-5) {
				t.Fatalf("param %d grad[%d] = %v, numeric %v", pi, i, p.G[i], num)
			}
		}
	}
}

func TestMLPLearnsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{2, 8, 1}, Tanh{}, Identity{}, rng)
	opt := NewAdam(0.01)
	// Learn f(x) = x0*0.5 − x1.
	var finalLoss float64
	for epoch := 0; epoch < 400; epoch++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		target := []float64{0.5*x[0] - x[1]}
		y, ctx := m.Forward(x)
		lv, g := MSELoss(y, target, nil)
		finalLoss = lv
		m.Backward(ctx, g)
		opt.Step(m.Params())
	}
	// Evaluate on fresh points.
	var avg float64
	for i := 0; i < 50; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := m.Predict(x)
		d := y[0] - (0.5*x[0] - x[1])
		avg += d * d
	}
	avg /= 50
	if avg > 0.1 {
		t.Fatalf("MLP failed to learn linear map: eval MSE %v (train %v)", avg, finalLoss)
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam(1)
	p.W[0] = 1
	p.G[0] = 0.5
	NewSGD(0.1).Step([]*Param{p})
	if !almostEq(p.W[0], 0.95, 1e-12) {
		t.Fatalf("SGD step = %v, want 0.95", p.W[0])
	}
	if p.G[0] != 0 {
		t.Fatal("SGD must clear gradients")
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	plain := NewParam(1)
	mom := NewParam(1)
	plain.W[0], mom.W[0] = 1, 1
	sgd := NewSGD(0.01)
	sgdm := &SGD{LR: 0.01, Momentum: 0.9}
	for i := 0; i < 10; i++ {
		plain.G[0] = plain.W[0] // gradient of ½w²
		mom.G[0] = mom.W[0]
		sgd.Step([]*Param{plain})
		sgdm.Step([]*Param{mom})
	}
	if math.Abs(mom.W[0]) >= math.Abs(plain.W[0]) {
		t.Fatalf("momentum should descend faster: |%v| vs |%v|", mom.W[0], plain.W[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParam(1)
	p.W[0] = 5
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.G[0] = p.W[0] // minimize ½w²
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]) > 0.05 {
		t.Fatalf("Adam did not converge: w = %v", p.W[0])
	}
}

func TestMSELoss(t *testing.T) {
	loss, grad := MSELoss([]float64{1, 2}, []float64{0, 0}, nil)
	if !almostEq(loss, (1+4)/4.0, 1e-12) {
		t.Fatalf("MSE = %v, want 1.25", loss)
	}
	if !almostEq(grad[0], 0.5, 1e-12) || !almostEq(grad[1], 1, 1e-12) {
		t.Fatalf("grad = %v", grad)
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam(2)
	p.G[0], p.G[1] = 3, 4 // norm 5
	norm := ClipGrads([]*Param{p}, 1)
	if !almostEq(norm, 5, 1e-12) {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	if !almostEq(p.G[0], 0.6, 1e-12) || !almostEq(p.G[1], 0.8, 1e-12) {
		t.Fatalf("clipped = %v", p.G)
	}
	// Below the bound: untouched.
	q := NewParam(1)
	q.G[0] = 0.5
	ClipGrads([]*Param{q}, 1)
	if q.G[0] != 0.5 {
		t.Fatal("clip modified a small gradient")
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewParam(1000)
	p.XavierInit(10, 10, rng)
	limit := math.Sqrt(6.0 / 20)
	for _, w := range p.W {
		if w < -limit || w > limit {
			t.Fatalf("weight %v outside ±%v", w, limit)
		}
	}
}

func TestMLPCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{2, 3, 1}, Sigmoid{}, Identity{}, rng)
	c := m.Clone()
	before := m.Predict([]float64{1, 1})[0]
	c.Layers[0].Weight.W[0] += 10
	after := m.Predict([]float64{1, 1})[0]
	if before != after {
		t.Fatal("clone shares weights with original")
	}
	if m.InDim() != 2 || m.OutDim() != 1 {
		t.Fatalf("dims %d %d", m.InDim(), m.OutDim())
	}
}

func TestScalerRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(8)
		set := make([][]float64, 5+rng.Intn(20))
		for i := range set {
			set[i] = make([]float64, dim)
			for j := range set[i] {
				set[i][j] = rng.NormFloat64()*10 + 5
			}
		}
		s := NewScaler(dim)
		s.Fit(set)
		x := set[0]
		z := s.Transform(x, nil)
		back := s.Inverse(z, nil)
		for i := range x {
			if !almostEq(back[i], x[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScalerStandardizes(t *testing.T) {
	set := [][]float64{{0, 10}, {2, 20}, {4, 30}}
	s := NewScaler(2)
	s.Fit(set)
	var mean0 float64
	for _, x := range set {
		z := s.Transform(x, nil)
		mean0 += z[0]
	}
	if !almostEq(mean0/3, 0, 1e-12) {
		t.Fatalf("standardized mean = %v", mean0/3)
	}
}

func TestScalerConstantDimension(t *testing.T) {
	set := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s := NewScaler(2)
	s.Fit(set)
	z := s.Transform([]float64{5, 2}, nil)
	if math.IsNaN(z[0]) || math.IsInf(z[0], 0) {
		t.Fatalf("constant dim transform = %v", z[0])
	}
}

func TestMinMaxRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		set := make([][]float64, 5+rng.Intn(15))
		for i := range set {
			set[i] = make([]float64, dim)
			for j := range set[i] {
				set[i][j] = rng.NormFloat64() * 7
			}
		}
		s := NewMinMaxScaler(dim)
		s.Fit(set)
		x := set[len(set)-1]
		back := s.Inverse(s.Transform(x, nil), nil)
		for i := range x {
			if !almostEq(back[i], x[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxUnitRange(t *testing.T) {
	set := [][]float64{{0}, {5}, {10}}
	s := NewMinMaxScaler(1)
	s.Fit(set)
	if z := s.Transform([]float64{0}, nil); z[0] != 0 {
		t.Fatalf("min → %v, want 0", z[0])
	}
	if z := s.Transform([]float64{10}, nil); z[0] != 1 {
		t.Fatalf("max → %v, want 1", z[0])
	}
	if z := s.Transform([]float64{15}, nil); z[0] != 1.5 {
		t.Fatalf("beyond-range → %v, want 1.5", z[0])
	}
}

func TestScalerCloneIndependent(t *testing.T) {
	s := NewScaler(1)
	s.Fit([][]float64{{1}, {3}})
	c := s.Clone()
	s.Fit([][]float64{{100}, {300}})
	if z := c.Transform([]float64{2}, nil); !almostEq(z[0], 0, 1e-9) {
		t.Fatalf("clone affected by refit: %v", z[0])
	}
	mm := NewMinMaxScaler(1)
	mm.Fit([][]float64{{0}, {2}})
	mc := mm.Clone()
	mm.Fit([][]float64{{0}, {200}})
	if z := mc.Transform([]float64{1}, nil); !almostEq(z[0], 0.5, 1e-9) {
		t.Fatalf("minmax clone affected by refit: %v", z[0])
	}
}

func TestInverseSub(t *testing.T) {
	s := NewScaler(4)
	s.Fit([][]float64{{0, 0, 10, 100}, {2, 2, 30, 300}})
	// Tail moments: mean 20/200, std 10/100.
	out := s.InverseSub([]float64{1, 1}, nil, 2)
	if !almostEq(out[0], 30, 1e-9) || !almostEq(out[1], 300, 1e-9) {
		t.Fatalf("InverseSub = %v", out)
	}
}
