// Package nn is a from-scratch neural-network substrate: fully connected
// layers with manual backpropagation, sigmoid/ReLU/tanh activations, MSE
// loss and SGD/Adam optimizers. Layers expose context-passing Forward/
// Backward pairs so one parameter set can participate in several forward
// passes per step — required by USAD's shared encoder and N-BEATS' double
// residual stacks.
package nn

import (
	"math"
	"math/rand"
)

// Param is a flat parameter tensor with its gradient accumulator.
type Param struct {
	W []float64 // weights
	G []float64 // accumulated gradients
}

// NewParam allocates a zeroed parameter of n elements.
func NewParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// XavierInit fills W with uniform Glorot initialization for a layer with
// the given fan-in and fan-out.
func (p *Param) XavierInit(fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.W {
		p.W[i] = (2*rng.Float64() - 1) * limit
	}
}

// GradNorm returns the Euclidean norm of the gradient, used for clipping.
func (p *Param) GradNorm() float64 {
	var s float64
	for _, g := range p.G {
		s += g * g
	}
	return math.Sqrt(s)
}

// ClipGrads scales the gradients of params so their global norm does not
// exceed maxNorm. It returns the pre-clip global norm.
func ClipGrads(params []*Param, maxNorm float64) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.G {
			s += g * g
		}
	}
	norm := math.Sqrt(s)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
	}
	return norm
}
