// Package nn is a from-scratch neural-network substrate: fully connected
// layers with manual backpropagation, sigmoid/ReLU/tanh activations, MSE
// loss and SGD/Adam optimizers. Layers expose context-passing Forward/
// Backward pairs so one parameter set can participate in several forward
// passes per step — required by USAD's shared encoder and N-BEATS' double
// residual stacks.
//
// # Buffer ownership
//
// The hot-path API is allocation-free and follows three rules:
//
//  1. Callers own pass state. An MLPContext (from MLP.NewContext) holds
//     every buffer one forward→backward pair needs; it is reused across
//     passes and must serve only one in-flight pass at a time. Code that
//     overlaps several passes of one parameter set (USAD's encoder runs
//     twice before backprop) holds one context per pass. MLP.Predict
//     uses the MLP's private scratch context, so its result is only
//     valid until the next Predict on the same MLP.
//
//  2. Into-variants write into caller buffers and alias instead of
//     copying. Linear.ForwardInto keeps no input copy — the caller
//     preserves x until BackwardInto. Activation contexts alias the
//     pre- or post-activation buffer (ReLU: the input, so its output
//     buffer must not alias it). MLP.BackwardCtx consumes gradOut in
//     place, and its returned gradient aliases the context.
//
//  3. Returned slices from Params, ForwardCtx, BackwardCtx and Predict
//     alias internal state — never retain them across calls or mutate
//     Params' slice. MSELoss writes into the grad buffer the caller
//     passes (allocating only when it is nil); optimizers keep their
//     moment state keyed by *Param and allocate it on first use only.
package nn

import (
	"math"
	"math/rand"
)

// Param is a flat parameter tensor with its gradient accumulator.
type Param struct {
	W []float64 // weights
	G []float64 // accumulated gradients
}

// NewParam allocates a zeroed parameter of n elements.
func NewParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
//
//streamad:hotpath
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// XavierInit fills W with uniform Glorot initialization for a layer with
// the given fan-in and fan-out.
func (p *Param) XavierInit(fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.W {
		p.W[i] = (2*rng.Float64() - 1) * limit
	}
}

// GradNorm returns the Euclidean norm of the gradient, used for clipping.
//
//streamad:hotpath
func (p *Param) GradNorm() float64 {
	var s float64
	for _, g := range p.G {
		s += g * g
	}
	return math.Sqrt(s)
}

// ClipGrads scales the gradients of params so their global norm does not
// exceed maxNorm. It returns the pre-clip global norm.
//
//streamad:hotpath
func ClipGrads(params []*Param, maxNorm float64) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.G {
			s += g * g
		}
	}
	norm := math.Sqrt(s)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
	}
	return norm
}
