package nn

// MinMaxScaler maps feature vectors into [0,1] per dimension using the
// training-set range, the normalization the original USAD uses so its
// sigmoid-bounded decoders can cover the data. Values outside the training
// range map outside [0,1] linearly, which the bounded decoder cannot
// reach — exactly the saturation that makes USAD's adversarial score spike
// on out-of-range anomalies.
type MinMaxScaler struct {
	lo    []float64
	scale []float64 // 1/(hi-lo)
}

// NewMinMaxScaler returns an identity-range scaler of the given dimension.
func NewMinMaxScaler(dim int) *MinMaxScaler {
	s := &MinMaxScaler{lo: make([]float64, dim), scale: make([]float64, dim)}
	for i := range s.scale {
		s.scale[i] = 1
	}
	return s
}

// Fit estimates per-dimension ranges from the training set. Constant
// dimensions get unit scale.
func (s *MinMaxScaler) Fit(set [][]float64) {
	if len(set) == 0 {
		return
	}
	dim := len(s.lo)
	hi := make([]float64, dim)
	first := true
	for _, x := range set {
		if len(x) != dim {
			continue
		}
		if first {
			copy(s.lo, x)
			copy(hi, x)
			first = false
			continue
		}
		for i, v := range x {
			if v < s.lo[i] {
				s.lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	for i := range s.scale {
		r := hi[i] - s.lo[i]
		if r < 1e-8 {
			s.scale[i] = 1
		} else {
			s.scale[i] = 1 / r
		}
	}
}

// Transform maps x into the unit range into dst (allocated when nil).
//
//streamad:hotpath
func (s *MinMaxScaler) Transform(x, dst []float64) []float64 {
	if dst == nil {
		//streamad:ignore hotalloc first-call allocation when the caller passes nil dst
		dst = make([]float64, len(x))
	}
	for i, v := range x {
		dst[i] = (v - s.lo[i]) * s.scale[i]
	}
	return dst
}

// Inverse maps a unit-range vector back to the original space into dst
// (allocated when nil).
//
//streamad:hotpath
func (s *MinMaxScaler) Inverse(z, dst []float64) []float64 {
	if dst == nil {
		//streamad:ignore hotalloc first-call allocation when the caller passes nil dst
		dst = make([]float64, len(z))
	}
	for i, v := range z {
		dst[i] = v/s.scale[i] + s.lo[i]
	}
	return dst
}

// Clone returns a deep copy.
func (s *MinMaxScaler) Clone() *MinMaxScaler {
	c := &MinMaxScaler{lo: make([]float64, len(s.lo)), scale: make([]float64, len(s.scale))}
	copy(c.lo, s.lo)
	copy(c.scale, s.scale)
	return c
}
