// Package monitor runs many streaming anomaly detectors concurrently —
// one per named stream — and fans their alerts into a single channel.
// This is the deployment shape the paper's introduction motivates
// (automatic monitoring of fleets of devices): each device's telemetry is
// an independent stream with its own detector state, processed in
// parallel, with one consumer draining alerts.
//
// Per-stream ordering is preserved (each stream has a dedicated worker
// goroutine fed through a buffered channel); streams are independent and
// proceed in parallel. Feed applies backpressure when a stream's buffer
// is full.
package monitor

import (
	"errors"
	"fmt"
	"sync"

	"streamad/internal/core"
	"streamad/internal/score"
)

// Stepper is the detector-side contract the monitor drives; it is
// satisfied by both core.Detector and the public streamad.Detector.
type Stepper interface {
	Step(s []float64) (core.Result, bool)
}

// Alert is one threshold crossing on one stream.
type Alert struct {
	// Stream is the stream name passed to Feed.
	Stream string
	// Step is the 0-based index of the vector within its stream.
	Step int
	// Score is the anomaly score f_t that crossed the threshold.
	Score float64
	// Nonconformity is the raw a_t.
	Nonconformity float64
	// Threshold is the boundary in effect when the alert fired.
	Threshold float64
}

// Config assembles a Monitor.
type Config struct {
	// NewDetector builds a fresh detector for a stream (required). It is
	// called once per distinct stream name, serialized by the monitor.
	NewDetector func(stream string) (Stepper, error)
	// NewThresholder builds the per-stream alert policy (default: a
	// streaming 0.99-quantile thresholder).
	NewThresholder func(stream string) score.Thresholder
	// Buffer is the per-stream queue length (default 64).
	Buffer int
	// AlertBuffer is the fan-in alert channel capacity (default 256).
	AlertBuffer int
}

// Monitor multiplexes streams over per-stream detector workers.
type Monitor struct {
	cfg     Config
	mu      sync.Mutex
	streams map[string]*streamWorker
	alerts  chan Alert
	wg      sync.WaitGroup
	closed  bool
}

type streamWorker struct {
	name  string
	in    chan []float64
	det   Stepper
	th    score.Thresholder
	steps int
}

// ErrClosed is returned by Feed after Close.
var ErrClosed = errors.New("monitor: closed")

// New validates the configuration and returns a running Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.NewDetector == nil {
		return nil, errors.New("monitor: NewDetector is required")
	}
	if cfg.NewThresholder == nil {
		cfg.NewThresholder = func(string) score.Thresholder {
			return score.NewQuantileThresholder(0.99)
		}
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	if cfg.AlertBuffer <= 0 {
		cfg.AlertBuffer = 256
	}
	return &Monitor{
		cfg:     cfg,
		streams: make(map[string]*streamWorker),
		alerts:  make(chan Alert, cfg.AlertBuffer),
	}, nil
}

// Alerts returns the fan-in alert channel. It is closed by Close after
// all workers drain.
func (m *Monitor) Alerts() <-chan Alert { return m.alerts }

// Feed routes one stream vector to the named stream's detector, creating
// the detector on first use. It blocks when the stream's buffer is full
// (backpressure) and returns ErrClosed after Close.
//
//streamad:lifecycle — starts one worker per stream on first use; Close drains and joins.
func (m *Monitor) Feed(stream string, s []float64) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	w, ok := m.streams[stream]
	if !ok {
		det, err := m.cfg.NewDetector(stream)
		if err != nil {
			m.mu.Unlock()
			return fmt.Errorf("monitor: creating detector for %q: %w", stream, err)
		}
		w = &streamWorker{
			name: stream,
			in:   make(chan []float64, m.cfg.Buffer),
			det:  det,
			th:   m.cfg.NewThresholder(stream),
		}
		m.streams[stream] = w
		m.wg.Add(1)
		go m.run(w)
	}
	m.mu.Unlock()

	// Copy: the caller may reuse its slice.
	v := make([]float64, len(s))
	copy(v, s)
	w.in <- v
	return nil
}

// run is the per-stream worker loop.
func (m *Monitor) run(w *streamWorker) {
	defer m.wg.Done()
	for s := range w.in {
		res, ok := w.det.Step(s)
		step := w.steps
		w.steps++
		if !ok {
			continue
		}
		th := w.th.Threshold()
		if w.th.Alert(res.Score) {
			m.alerts <- Alert{
				Stream:        w.name,
				Step:          step,
				Score:         res.Score,
				Nonconformity: res.Nonconformity,
				Threshold:     th,
			}
		}
	}
}

// Streams returns the names of all streams seen so far.
func (m *Monitor) Streams() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.streams))
	for name := range m.streams {
		out = append(out, name)
	}
	return out
}

// Close stops accepting input, waits for every worker to drain its queue
// and closes the alert channel. A consumer must keep draining Alerts()
// while Close runs (or the alert buffer must be large enough), otherwise
// workers block on the fan-in channel.
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, w := range m.streams {
		close(w.in)
	}
	m.mu.Unlock()
	m.wg.Wait()
	close(m.alerts)
}
