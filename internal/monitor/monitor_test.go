package monitor

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"streamad/internal/core"
	"streamad/internal/score"
)

// stubDetector flags every vector whose first element exceeds 1 with a
// high score; ready after 3 steps.
type stubDetector struct {
	steps int
}

func (d *stubDetector) Step(s []float64) (core.Result, bool) {
	d.steps++
	if d.steps <= 3 {
		return core.Result{}, false
	}
	score := 0.1
	if s[0] > 1 {
		score = 0.9
	}
	return core.Result{Score: score, Nonconformity: score}, true
}

func newTestMonitor(t *testing.T) *Monitor {
	t.Helper()
	m, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return &stubDetector{}, nil },
		NewThresholder: func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.5}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorRoutesAndAlerts(t *testing.T) {
	m := newTestMonitor(t)
	var got []Alert
	done := make(chan struct{})
	go func() {
		for a := range m.Alerts() {
			got = append(got, a)
		}
		close(done)
	}()
	for i := 0; i < 10; i++ {
		v := 0.0
		if i == 7 {
			v = 5 // the anomaly
		}
		if err := m.Feed("dev-1", []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	<-done
	if len(got) != 1 {
		t.Fatalf("alerts = %v, want exactly 1", got)
	}
	a := got[0]
	if a.Stream != "dev-1" || a.Step != 7 || a.Score != 0.9 {
		t.Fatalf("alert = %+v", a)
	}
	if a.Threshold != 0.5 {
		t.Fatalf("threshold = %v", a.Threshold)
	}
}

func TestMonitorIsolatesStreams(t *testing.T) {
	m := newTestMonitor(t)
	var mu sync.Mutex
	perStream := map[string]int{}
	done := make(chan struct{})
	go func() {
		for a := range m.Alerts() {
			mu.Lock()
			perStream[a.Stream]++
			mu.Unlock()
		}
		close(done)
	}()
	// Each stream needs its own 3-step warmup; anomalies at per-stream
	// step 5 must alert on every stream independently.
	for step := 0; step < 8; step++ {
		for dev := 0; dev < 4; dev++ {
			v := 0.0
			if step == 5 {
				v = 9
			}
			if err := m.Feed(fmt.Sprintf("dev-%d", dev), []float64{v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Close()
	<-done
	if len(perStream) != 4 {
		t.Fatalf("streams alerted = %v, want 4", perStream)
	}
	for dev, n := range perStream {
		if n != 1 {
			t.Fatalf("%s alerted %d times, want 1", dev, n)
		}
	}
	if got := len(m.Streams()); got != 4 {
		t.Fatalf("Streams() = %d", got)
	}
}

func TestMonitorConcurrentFeeders(t *testing.T) {
	m := newTestMonitor(t)
	done := make(chan int)
	go func() {
		n := 0
		for range m.Alerts() {
			n++
		}
		done <- n
	}()
	var wg sync.WaitGroup
	const feeders = 8
	const perFeeder = 200
	for f := 0; f < feeders; f++ {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("stream-%d", f)
			for i := 0; i < perFeeder; i++ {
				v := 0.0
				if i%50 == 10 && i > 3 {
					v = 7
				}
				if err := m.Feed(name, []float64{v}); err != nil {
					t.Errorf("feed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	m.Close()
	n := <-done
	// 4 anomalies per stream (i = 10, 60, 110, 160), all past warmup.
	if n != feeders*4 {
		t.Fatalf("alerts = %d, want %d", n, feeders*4)
	}
}

func TestMonitorFeedAfterClose(t *testing.T) {
	m := newTestMonitor(t)
	go func() {
		for range m.Alerts() {
		}
	}()
	m.Close()
	if err := m.Feed("x", []float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Feed after Close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestMonitorDetectorFactoryError(t *testing.T) {
	m, err := New(Config{
		NewDetector: func(stream string) (Stepper, error) {
			return nil, errors.New("boom")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Feed("x", []float64{1}); err == nil {
		t.Fatal("factory error must propagate")
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("NewDetector is required")
	}
}

func TestMonitorDefaultThresholder(t *testing.T) {
	m, err := New(Config{
		NewDetector: func(string) (Stepper, error) { return &stubDetector{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range m.Alerts() {
		}
	}()
	for i := 0; i < 50; i++ {
		if err := m.Feed("d", []float64{0}); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
}
