package ingest_test

import (
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"streamad"
	"streamad/internal/ingest"
	"streamad/internal/persist"
)

// newPagerRegistry builds a registry whose streams run real (small)
// streamad detectors — required by the tiering tests because the stub
// detectors don't implement core.Pager.
func newPagerRegistry(t *testing.T, cfg ingest.Config) (*ingest.Registry, *persist.Store) {
	t.Helper()
	store, err := persist.Open(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	cfg.Store = store
	if cfg.NewDetector == nil {
		cfg.NewDetector = func(string) (ingest.Stepper, error) {
			return streamad.New(pagerDetCfg())
		}
	}
	if cfg.WarmAfter == 0 {
		cfg.WarmAfter = 50 * time.Millisecond
	}
	r, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, store
}

func pagerDetCfg() streamad.Config {
	return streamad.Config{
		Model: streamad.ModelARIMA, Task1: streamad.TaskSlidingWindow,
		Task2: streamad.TaskMuSigma, Score: streamad.ScoreRaw,
		Channels: 2, Window: 8, TrainSize: 8, WarmupVectors: 8,
	}
}

// TestWarmPageOutBitIdentical: observe, force a warm demotion, observe
// more; every score must equal the serial reference detector's.
func TestWarmPageOutBitIdentical(t *testing.T) {
	r, store := newPagerRegistry(t, ingest.Config{})
	ref, err := streamad.New(pagerDetCfg())
	if err != nil {
		t.Fatal(err)
	}
	step := func(i int) {
		v := vec(3, i)
		got, err := r.Observe("s", v)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := ref.Step(v)
		if got.Ready != wantOK {
			t.Fatalf("step %d: ready %v, want %v", i, got.Ready, wantOK)
		}
		if wantOK && got.Score != want.Score {
			t.Fatalf("step %d: score %v, want %v (must be bit-identical across paging)", i, got.Score, want.Score)
		}
	}
	for i := 0; i < 40; i++ {
		step(i)
	}
	// Far-future "now" forces the idle check regardless of WarmAfter.
	if n := r.PageIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("PageIdle demoted %d streams, want 1", n)
	}
	st := r.Stats()
	if st.WarmStreams != 1 || st.HotStreams != 0 || st.HotToWarm != 1 {
		t.Fatalf("after demotion: hot=%d warm=%d hot→warm=%d", st.HotStreams, st.WarmStreams, st.HotToWarm)
	}
	if _, err := store.ReadPage("s"); err != nil {
		t.Fatalf("no page file after demotion: %v", err)
	}
	for i := 40; i < 80; i++ {
		step(i)
	}
	st = r.Stats()
	if st.WarmStreams != 0 || st.HotStreams != 1 || st.WarmToHot != 1 {
		t.Fatalf("after promotion: hot=%d warm=%d warm→hot=%d", st.HotStreams, st.WarmStreams, st.WarmToHot)
	}
	if _, ok := r.StreamStats("s"); !ok {
		t.Fatal("stream vanished")
	}
}

// TestWarmPageInFallsBackToSnapshot: a damaged page file must not lose
// the stream — the demotion wrote a snapshot, so page-in rebuilds from it
// with identical scores.
func TestWarmPageInFallsBackToSnapshot(t *testing.T) {
	r, store := newPagerRegistry(t, ingest.Config{Logf: t.Logf})
	ref, err := streamad.New(pagerDetCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		v := vec(4, i)
		if _, err := r.Observe("s", v); err != nil {
			t.Fatal(err)
		}
		ref.Step(v)
	}
	if n := r.PageIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("PageIdle demoted %d streams, want 1", n)
	}
	// Corrupt the page; the snapshot fallback must reproduce the state.
	if err := store.RemovePage("s"); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 60; i++ {
		v := vec(4, i)
		got, err := r.Observe("s", v)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := ref.Step(v)
		if got.Ready != wantOK || (wantOK && got.Score != want.Score) {
			t.Fatalf("step %d after snapshot rebuild: got %+v, want %v/%v", i, got, want.Score, wantOK)
		}
	}
}

// TestConcurrentObservesSingleRestore: many goroutines observing a warm
// stream must trigger exactly one page-in, keep exactly one stream
// object installed, and stay bit-identical to the serial reference.
func TestConcurrentObservesSingleRestore(t *testing.T) {
	r, _ := newPagerRegistry(t, ingest.Config{})
	ref, err := streamad.New(pagerDetCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		v := vec(5, i)
		if _, err := r.Observe("s", v); err != nil {
			t.Fatal(err)
		}
		ref.Step(v)
	}
	for round := 0; round < 5; round++ {
		if n := r.PageIdle(time.Now().Add(time.Hour)); n != 1 {
			t.Fatalf("round %d: PageIdle demoted %d, want 1", round, n)
		}
		const burst = 16
		base := 40 + round*burst
		results := make([]ingest.Result, burst)
		vecs := make([][]float64, burst) // indexed by assigned seq - base
		var wg sync.WaitGroup
		for j := 0; j < burst; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				v := vec(5, base+j)
				res, err := r.Observe("s", v)
				if err != nil {
					t.Error(err)
					return
				}
				results[res.Seq-uint64(base)] = res
				vecs[res.Seq-uint64(base)] = v
			}(j)
		}
		wg.Wait()
		// Concurrent admissions take sequence numbers in arrival order;
		// the dispatcher then scores in that order, so the reference
		// replays the vectors by assigned seq.
		for j := 0; j < burst; j++ {
			want, wantOK := ref.Step(vecs[j])
			got := results[j]
			if got.Ready != wantOK || (wantOK && got.Score != want.Score) {
				t.Fatalf("round %d seq %d: got %+v, want %v/%v", round, base+j, got, want.Score, wantOK)
			}
		}
		st := r.Stats()
		if st.WarmToHot != uint64(round+1) {
			t.Fatalf("round %d: warm→hot = %d, want exactly %d (single restore per burst)", round, st.WarmToHot, round+1)
		}
		if st.Streams != 1 {
			t.Fatalf("round %d: %d streams installed, want 1", round, st.Streams)
		}
	}
}

// TestEvictRestoreGoroutineStable: repeated evict→restore cycles must
// not leak goroutines — eviction closes the detector (draining trainer
// work), and the pooled dispatcher spawns nothing per stream.
func TestEvictRestoreGoroutineStable(t *testing.T) {
	cfg := pagerDetCfg()
	cfg.AsyncFineTune = true // exercise the trainer shutdown path too
	r, _ := newPagerRegistry(t, ingest.Config{
		StreamTTL: time.Hour, // manual eviction below
		NewDetector: func(string) (ingest.Stepper, error) {
			return streamad.New(cfg)
		},
	})
	warm := func(id string, n, off int) {
		for i := 0; i < n; i++ {
			if _, err := r.Observe(id, vec(6, off+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm("a", 30, 0)
	warm("b", 30, 0)
	runtime.GC()
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 20; cycle++ {
		if n := r.EvictIdle(time.Now().Add(2 * time.Hour)); n != 2 {
			t.Fatalf("cycle %d: evicted %d streams, want 2", cycle, n)
		}
		warm("a", 3, 30+3*cycle)
		warm("b", 3, 30+3*cycle)
	}
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew %d → %d across 20 evict/restore cycles", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := r.Stats()
	if st.EvictedTotal != 40 || st.ColdToHot != 40 {
		t.Fatalf("evicted=%d cold→hot=%d, want 40/40", st.EvictedTotal, st.ColdToHot)
	}
}

// TestWarmStreamColdEviction: a warm stream idle past the TTL falls off
// the ladder entirely, and the next observe restores it from snapshot.
func TestWarmStreamColdEviction(t *testing.T) {
	r, store := newPagerRegistry(t, ingest.Config{StreamTTL: time.Hour})
	ref, err := streamad.New(pagerDetCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		v := vec(7, i)
		if _, err := r.Observe("s", v); err != nil {
			t.Fatal(err)
		}
		ref.Step(v)
	}
	if n := r.PageIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatal("demotion failed")
	}
	if n := r.EvictIdle(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatal("cold eviction failed")
	}
	st := r.Stats()
	if st.Streams != 0 || st.WarmToCold != 1 || st.ColdStreams != 1 {
		t.Fatalf("after cold eviction: streams=%d warm→cold=%d cold=%d", st.Streams, st.WarmToCold, st.ColdStreams)
	}
	if _, err := store.ReadPage("s"); err == nil {
		t.Fatal("page file survived cold eviction")
	}
	for i := 40; i < 60; i++ {
		v := vec(7, i)
		got, err := r.Observe("s", v)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := ref.Step(v)
		if got.Ready != wantOK || (wantOK && got.Score != want.Score) {
			t.Fatalf("step %d after cold restore: got %+v, want %v/%v", i, got, want.Score, wantOK)
		}
	}
}
