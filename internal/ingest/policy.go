package ingest

import "fmt"

// Policy picks what admission does when a stream's queue is full.
type Policy int

const (
	// Block makes the producer wait for queue space: backpressure, the
	// behaviour of the original synchronous endpoint.
	Block Policy = iota
	// Shed rejects the vector with ErrOverload (HTTP: 429 + Retry-After).
	Shed
	// DropOldest discards the oldest queued vector to admit the new one;
	// the discarded vector's producer receives a Dropped result.
	DropOldest
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	case DropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses the -overload flag spellings.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "shed":
		return Shed, nil
	case "drop-oldest":
		return DropOldest, nil
	}
	return 0, fmt.Errorf("ingest: unknown overload policy %q (want block, shed or drop-oldest)", s)
}
