// Stream tiering: the residency ladder between fully-hot and
// cold-evicted. A hot stream idle past WarmAfter is demoted to warm —
// its detector's window state (representation ring, training set, drift
// reference, scorer windows) is snapshotted, written to the store as a
// page file and its backing storage freed, while the model stays
// resident. The next observe pages it back in under the stream's
// processing lock, bit-identically. Warm streams that stay idle past
// StreamTTL fall off the ladder entirely via the existing cold eviction
// (checkpoint + unload), whose restore path never reads page files — a
// demotion forces a snapshot first, so pages are a discardable cache.
package ingest

import (
	"fmt"
	"time"

	"streamad/internal/core"
)

// PageIdle demotes every hot, idle, pageable stream whose last observe
// is older than WarmAfter to the warm tier, and returns how many it
// demoted. Safe to call concurrently with ingestion: a racing observe
// simply pages the stream straight back in.
func (r *Registry) PageIdle(now time.Time) int {
	if r.cfg.WarmAfter <= 0 || r.cfg.Store == nil {
		return 0
	}
	cutoff := now.Add(-r.cfg.WarmAfter).UnixNano()
	paged := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		streams := make([]*stream, 0, len(sh.streams))
		for _, st := range sh.streams {
			streams = append(streams, st)
		}
		sh.mu.Unlock()
		for _, st := range streams {
			if st.lastTouch.Load() > cutoff || Tier(st.tier.Load()) != TierHot {
				continue
			}
			if _, ok := st.det.(core.Pager); !ok {
				continue // not pageable (e.g. cascade); stays hot until cold eviction
			}
			st.qmu.Lock()
			idle := len(st.queue) == 0 && !st.busy && !st.closed
			st.qmu.Unlock()
			if !idle {
				continue
			}
			st.procMu.Lock()
			err := r.pageOutLocked(st)
			st.procMu.Unlock()
			if err != nil {
				r.cfg.Logf("streamad: page out %q: stream stays hot: %v", st.id, err)
				continue
			}
			paged++
		}
	}
	return paged
}

// pageOutLocked demotes one stream to warm; the caller holds procMu. A
// dirty WAL is snapshotted first, so the crash-recovery invariant
// (snapshot at S + WAL from ≤ S) holds with zero WAL entries while the
// stream is paged — which is also what lets cold eviction skip the
// (impossible) checkpoint of a hollow detector.
func (r *Registry) pageOutLocked(st *stream) error {
	pager := st.det.(core.Pager)
	if pager.Paged() {
		return nil
	}
	if st.walSince > 0 {
		if err := r.snapshotLocked(st.id, st); err != nil {
			return err
		}
	}
	blob, err := pager.PageOut()
	if err != nil {
		return err
	}
	if err := r.cfg.Store.WritePage(st.id, blob); err != nil {
		// Could not persist the page: repopulate from the in-memory blob
		// and stay hot.
		if rerr := pager.PageIn(blob); rerr != nil {
			return fmt.Errorf("%w (and page-in rollback failed: %v)", err, rerr)
		}
		return err
	}
	st.tier.Store(int32(TierWarm))
	r.met.hotToWarm.Add(1)
	return nil
}

// ensureResident pages a warm stream's window state back in before the
// detector is touched; the caller holds procMu, which is what serializes
// concurrent observes into a single restore. A missing or damaged page
// file falls back to the snapshot the demotion wrote.
func (r *Registry) ensureResident(st *stream) error {
	pager, ok := st.det.(core.Pager)
	if !ok || !pager.Paged() {
		return nil
	}
	blob, err := r.cfg.Store.ReadPage(st.id)
	if err == nil {
		err = pager.PageIn(blob)
	}
	if err != nil {
		r.cfg.Logf("streamad: page in %q: %v (rebuilding from snapshot)", st.id, err)
		if err := r.rebuildFromSnapshot(st); err != nil {
			return err
		}
	}
	if err := r.cfg.Store.RemovePage(st.id); err != nil {
		r.cfg.Logf("streamad: %v", err)
	}
	st.tier.Store(int32(TierHot))
	r.met.warmToHot.Add(1)
	return nil
}

// rebuildFromSnapshot reloads a stream's detector and thresholder from
// its on-disk snapshot — the page-in fallback. While paged the WAL is
// empty (the demotion snapshotted and rotated), so the snapshot alone is
// the complete current state; a full Load also clears the paged flag.
func (r *Registry) rebuildFromSnapshot(st *stream) error {
	snap, err := r.cfg.Store.ReadSnapshot(st.id)
	if err != nil {
		return err
	}
	return LoadSnapshotState(st.det, st.th, snap)
}
