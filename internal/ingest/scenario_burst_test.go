package ingest_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"streamad/internal/core"
	"streamad/internal/ingest"
	"streamad/internal/scenario"
)

// burstSpec is the adversarial workload for the overload-policy tests:
// a clean 2-channel gaussian base with recurring 20-step bursts of
// 8-sigma spikes — exactly the shape that piles up in a bounded queue.
const burstSpec = "burst(base(corpus=gauss,channels=2,p=0,pool=128),at=20,span=20,period=40,mag=8)"

// scenarioVectors pre-draws n vectors for one stream of a scenario, so
// producer goroutines replay deterministic data without touching the
// generator concurrently.
func scenarioVectors(t *testing.T, spec string, seed int64, n int) [][]float64 {
	t.Helper()
	sc, err := scenario.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.NewStream(seed)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		v, _ := s.Next()
		vecs[i] = append([]float64(nil), v...)
	}
	return vecs
}

// slowDetector is histDetector behind a fixed per-step delay, so a
// burst of enqueues outruns the dispatcher and the queue actually
// fills. Scores stay deterministic and history-dependent.
type slowDetector struct {
	hist  histDetector
	delay time.Duration
}

func (d *slowDetector) Step(v []float64) (core.Result, bool) {
	time.Sleep(d.delay)
	return d.hist.Step(v)
}

// TestShedUnderScenarioBursts drives six streams of scenario bursts at
// depth-4 queues under the shed policy. Rejections must fail fast with
// ErrOverload, and the admitted subsequence of every stream must keep
// contiguous sequence numbers and score bit-identically to a serial
// replay of exactly the admitted vectors. Run with -race.
func TestShedUnderScenarioBursts(t *testing.T) {
	const streams, n, volley = 6, 240, 40
	r := newHistRegistry(t, ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) {
			return &slowDetector{hist: histDetector{warm: 2}, delay: 200 * time.Microsecond}, nil
		},
		Shards:     2,
		QueueDepth: 4,
		Overload:   ingest.Shed,
	})
	type outcome struct {
		admitted bool
		vec      []float64
		ack      ingest.Ack
	}
	perStream := make([][]outcome, streams)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		vecs := scenarioVectors(t, burstSpec, scenario.DeriveSeed(42, fmt.Sprintf("stream/%d", s)), n)
		wg.Add(1)
		go func(s int, vecs [][]float64) {
			defer wg.Done()
			id := fmt.Sprintf("burst-%d", s)
			for i, v := range vecs {
				a, err := r.Enqueue(id, v)
				switch {
				case errors.Is(err, ingest.ErrOverload):
					perStream[s] = append(perStream[s], outcome{vec: v})
				case err != nil:
					t.Errorf("stream %d vector %d: %v", s, i, err)
					return
				default:
					perStream[s] = append(perStream[s], outcome{admitted: true, vec: v, ack: a})
				}
				if (i+1)%volley == 0 {
					time.Sleep(3 * time.Millisecond) // inter-burst lull: the queue drains
				}
			}
		}(s, vecs)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var shed uint64
	for s := 0; s < streams; s++ {
		ref := &histDetector{warm: 2}
		var wantSeq uint64
		for i, o := range perStream[s] {
			if !o.admitted {
				shed++
				continue
			}
			res := <-o.ack.Done
			// Sequence numbers are assigned at admission: the k-th
			// admitted vector of a stream is seq k, shed or not around it.
			if res.Seq != wantSeq {
				t.Fatalf("stream %d record %d: seq %d, want %d (order across sheds broken)", s, i, res.Seq, wantSeq)
			}
			wantSeq++
			want, ok := ref.Step(o.vec)
			if res.Ready != ok || (ok && res.Score != want.Score) {
				t.Fatalf("stream %d seq %d: score %v/%v, want %v/%v (admitted subsequence must replay serially)",
					s, res.Seq, res.Ready, res.Score, ok, want.Score)
			}
		}
	}
	if shed == 0 {
		t.Fatal("bursty load never tripped the shed policy; the test exercised nothing")
	}
	if got := r.Stats().ShedTotal; got != shed {
		t.Fatalf("ShedTotal = %d, want %d observed rejections", got, shed)
	}
}

// TestDropOldestUnderScenarioBursts drives the same bursty scenario at
// the drop-oldest policy: every enqueue is admitted, each stream's acks
// carry sequence numbers 0..n-1 in admission order, dropped vectors are
// reported as such, and the surviving subsequence scores bit-identically
// to a serial replay. Run with -race.
func TestDropOldestUnderScenarioBursts(t *testing.T) {
	const streams, n, volley = 6, 200, 25
	r := newHistRegistry(t, ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) {
			return &slowDetector{hist: histDetector{warm: 2}, delay: 200 * time.Microsecond}, nil
		},
		Shards:     2,
		QueueDepth: 4,
		Overload:   ingest.DropOldest,
	})
	vecs := make([][][]float64, streams)
	acks := make([][]ingest.Ack, streams)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		vecs[s] = scenarioVectors(t, burstSpec, scenario.DeriveSeed(7, fmt.Sprintf("stream/%d", s)), n)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			id := fmt.Sprintf("drop-%d", s)
			for i, v := range vecs[s] {
				a, err := r.Enqueue(id, v)
				if err != nil {
					t.Errorf("stream %d vector %d: drop-oldest enqueue failed: %v", s, i, err)
					return
				}
				acks[s] = append(acks[s], a)
				if (i+1)%volley == 0 {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var dropped uint64
	for s := 0; s < streams; s++ {
		if len(acks[s]) != n {
			t.Fatalf("stream %d: %d acks, want %d (drop-oldest must admit everything)", s, len(acks[s]), n)
		}
		ref := &histDetector{warm: 2}
		for i, a := range acks[s] {
			res := <-a.Done
			if res.Seq != uint64(i) {
				t.Fatalf("stream %d record %d: seq %d (admission order must assign 0..n-1)", s, i, res.Seq)
			}
			if res.Dropped {
				dropped++
				continue
			}
			want, ok := ref.Step(vecs[s][i])
			if res.Ready != ok || (ok && res.Score != want.Score) {
				t.Fatalf("stream %d seq %d: score %v/%v, want %v/%v (survivors must replay serially, in order, across drops)",
					s, i, res.Ready, res.Score, ok, want.Score)
			}
		}
	}
	if dropped == 0 {
		t.Fatal("bursty load never triggered drop-oldest; the test exercised nothing")
	}
	if got := r.Stats().DroppedTotal; got != dropped {
		t.Fatalf("DroppedTotal = %d, want %d observed drops", got, dropped)
	}
}
