// Ingestion observability: lock-free counters the /metrics endpoint
// renders as the streamad_ingest_* families — shed and dropped vectors,
// evictions, a dispatcher batch-size histogram, and per-shard occupancy
// and queue depth.
package ingest

import (
	"sync/atomic"

	"streamad/internal/pool"
)

// PoolStats re-exports the shared worker pool's stats snapshot so
// callers reading Stats need not import internal/pool.
type PoolStats = pool.Stats

// BatchSizeBounds are the histogram's upper bucket bounds (a final +Inf
// bucket is implicit via Batches).
var BatchSizeBounds = [...]int{1, 2, 4, 8, 16, 32, 64, 128}

// ingestMetrics is the registry's hot-path instrumentation; every field
// is atomic so scoring never takes a lock to count.
type ingestMetrics struct {
	shed    atomic.Uint64
	dropped atomic.Uint64
	evicted atomic.Uint64

	// Tier ladder transitions (hot ⇄ warm ⇄ cold, plus the eviction
	// shortcut hot→cold and the restore shortcut cold→hot).
	hotToWarm  atomic.Uint64
	warmToHot  atomic.Uint64
	warmToCold atomic.Uint64
	hotToCold  atomic.Uint64
	coldToHot  atomic.Uint64

	batches  atomic.Uint64
	batchSum atomic.Uint64
	buckets  [len(BatchSizeBounds)]atomic.Uint64 // cumulative (≤ bound)
}

// observeBatch records one dispatcher pass over n coalesced vectors.
func (m *ingestMetrics) observeBatch(n int) {
	m.batches.Add(1)
	m.batchSum.Add(uint64(n))
	for i, b := range BatchSizeBounds {
		if n <= b {
			m.buckets[i].Add(1)
		}
	}
}

// ShardStat is one shard's instantaneous load.
type ShardStat struct {
	Streams    int // streams resident on the shard
	QueueDepth int // vectors queued across the shard's streams
}

// Stats is an instantaneous snapshot of the ingestion layer, cheap
// enough to take on every /metrics scrape.
type Stats struct {
	Shards     int
	QueueDepth int // configured per-stream bound
	Overload   Policy

	Streams       int   // live streams
	StreamsTotal  int64 // streams ever created (incl. restored/evicted)
	QueuedVectors int   // vectors currently queued across all streams

	// Residency tiers. Hot+Warm = Streams (resident); Cold counts
	// checkpointed-but-unloaded streams in the store.
	HotStreams  int
	WarmStreams int
	ColdStreams int

	// Tier transition totals since start.
	HotToWarm  uint64
	WarmToHot  uint64
	WarmToCold uint64
	HotToCold  uint64
	ColdToHot  uint64

	// ScorePool is the shared scoring pool's instantaneous load.
	ScorePool PoolStats

	ShedTotal    uint64
	DroppedTotal uint64
	EvictedTotal uint64

	Batches      uint64
	BatchSizeSum uint64
	// BatchSizeBuckets[i] counts batches of size ≤ BatchSizeBounds[i]
	// (cumulative, Prometheus histogram convention).
	BatchSizeBuckets [len(BatchSizeBounds)]uint64

	PerShard []ShardStat
}

// Stats snapshots the ingestion counters. Queue depths are read under
// each stream's queue lock, one stream at a time; no registry-wide lock
// exists to hold.
func (r *Registry) Stats() Stats {
	s := Stats{
		Shards:       len(r.shards),
		QueueDepth:   r.cfg.QueueDepth,
		Overload:     r.cfg.Overload,
		StreamsTotal: r.history.Load(),
		ShedTotal:    r.met.shed.Load(),
		DroppedTotal: r.met.dropped.Load(),
		EvictedTotal: r.met.evicted.Load(),
		HotToWarm:    r.met.hotToWarm.Load(),
		WarmToHot:    r.met.warmToHot.Load(),
		WarmToCold:   r.met.warmToCold.Load(),
		HotToCold:    r.met.hotToCold.Load(),
		ColdToHot:    r.met.coldToHot.Load(),
		ScorePool:    r.pool.Stats(),
		Batches:      r.met.batches.Load(),
		BatchSizeSum: r.met.batchSum.Load(),
		PerShard:     make([]ShardStat, len(r.shards)),
	}
	for i := range r.met.buckets {
		s.BatchSizeBuckets[i] = r.met.buckets[i].Load()
	}
	for i, sh := range r.shards {
		sh.mu.Lock()
		streams := make([]*stream, 0, len(sh.streams))
		for _, st := range sh.streams {
			streams = append(streams, st)
		}
		sh.mu.Unlock()
		ss := ShardStat{Streams: len(streams)}
		for _, st := range streams {
			st.qmu.Lock()
			ss.QueueDepth += len(st.queue)
			st.qmu.Unlock()
			if Tier(st.tier.Load()) == TierWarm {
				s.WarmStreams++
			} else {
				s.HotStreams++
			}
		}
		s.PerShard[i] = ss
		s.Streams += ss.Streams
		s.QueuedVectors += ss.QueueDepth
	}
	if r.cfg.Store != nil {
		// Cold = checkpointed in the store but not resident. A readdir per
		// scrape; best-effort (a listing error just reports zero).
		if ids, err := r.cfg.Store.IDs(); err == nil {
			cold := len(ids) - s.Streams
			if cold > 0 {
				s.ColdStreams = cold
			}
		}
	}
	return s
}
