package ingest_test

import (
	"errors"
	"testing"
	"time"

	"streamad"
	"streamad/internal/ingest"
	"streamad/internal/persist"
	"streamad/internal/score"
)

// migrationCase builds one real detector family for the migration
// invariant: the adopted stream must score the future exactly as the
// uninterrupted source would have.
type migrationCase struct {
	name string
	spec string
}

var migrationCases = []migrationCase{
	{"knn", "knn+sw+musigma+al"},
	{"ensemble", "ensemble(knn+sw+regular+avg, arima+sw+regular+avg, knn+ures+regular+avg; agg=perf, prune=-8)"},
	{"cascade", "cascade(zscore, knn; admit=0.1, calib=64, gatewin=32)"},
}

func specRegistry(t *testing.T, spec string, store *persist.Store, snapEvery int) *ingest.Registry {
	t.Helper()
	base := streamad.Config{Channels: 2, Window: 8, TrainSize: 16, Seed: 1}
	r, err := ingest.New(ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) {
			return streamad.NewFromSpec(spec, base)
		},
		NewThresholder: func(string) score.Thresholder {
			return score.NewQuantileThresholder(0.95)
		},
		Store:         store,
		SnapshotEvery: snapEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestMigrationBitIdentical: for every detector family, handing a stream
// off mid-run (snapshot + WAL tail shipped to a second registry, exactly
// the /migrate protocol's payload) must leave the adopted stream
// bit-identical to an uninterrupted twin — same fingerprint at the
// transfer point, then identical scores, nonconformities, thresholds and
// alert decisions on every future vector.
func TestMigrationBitIdentical(t *testing.T) {
	const (
		id     = "soak-7"
		before = 96 // vectors scored on the source pre-handoff
		after  = 64 // vectors scored on the target post-adopt
	)
	for _, tc := range migrationCases {
		t.Run(tc.name, func(t *testing.T) {
			storeA, err := persist.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer storeA.Close()
			storeB, err := persist.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer storeB.Close()

			// src checkpoints after 64 vectors; the feed pauses right there
			// so the boundary is deterministic, then the last 32 pre-handoff
			// vectors land only in the WAL. The handoff then ships a genuine
			// mid-stream snapshot plus tail — the interesting path — not
			// just a fresh checkpoint.
			src := specRegistry(t, tc.spec, storeA, 64)
			dst := specRegistry(t, tc.spec, storeB, 0)
			ref := specRegistry(t, tc.spec, nil, 0)

			var want []ingest.Result
			for i := 0; i < before+after; i++ {
				res, err := ref.Observe(id, vec(7, i))
				if err != nil {
					t.Fatal(err)
				}
				if i >= before {
					want = append(want, res)
				}
			}
			for i := 0; i < 64; i++ {
				if _, err := src.Observe(id, vec(7, i)); err != nil {
					t.Fatal(err)
				}
			}
			// The 64th admit kicked the background snapshotter; wait for the
			// checkpoint to land before feeding the tail, so the snapshot
			// boundary sits exactly at seq 64 and the remaining vectors
			// accumulate purely in the WAL.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if snap, err := storeA.ReadSnapshot(id); err == nil && snap.Seq == 64 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("source never wrote the mid-stream snapshot at seq 64")
				}
				time.Sleep(5 * time.Millisecond)
			}
			for i := 64; i < before; i++ {
				if _, err := src.Observe(id, vec(7, i)); err != nil {
					t.Fatal(err)
				}
			}

			hs, err := src.Handoff(id)
			if err != nil {
				t.Fatal(err)
			}
			if hs.Snapshot == nil || hs.Snapshot.ID != id {
				t.Fatalf("handoff snapshot = %+v", hs.Snapshot)
			}
			if hs.Snapshot.Seq != 64 || len(hs.Tail) != before-64 {
				t.Fatalf("handoff shipped snap seq %d with %d tail records, want 64 + %d — the mid-stream path was not exercised",
					hs.Snapshot.Seq, len(hs.Tail), before-64)
			}
			// The source no longer knows the stream.
			if _, ok := src.StreamStats(id); ok {
				t.Fatal("stream still live on source after handoff")
			}

			fp, err := dst.Adopt(id, hs.Snapshot, hs.Tail)
			if err != nil {
				t.Fatal(err)
			}
			if fp != hs.Fingerprint {
				t.Fatalf("adopted fingerprint %08x, source shipped %08x", fp, hs.Fingerprint)
			}

			for i := 0; i < after; i++ {
				res, err := dst.Observe(id, vec(7, before+i))
				if err != nil {
					t.Fatal(err)
				}
				w := want[i]
				if res.Seq != w.Seq || res.Ready != w.Ready || res.Score != w.Score ||
					res.Nonconformity != w.Nonconformity || res.Threshold != w.Threshold ||
					res.Alert != w.Alert {
					t.Fatalf("post-migration vector %d diverged:\n got %+v\nwant %+v", i, res, w)
				}
			}
			gotStats, ok := dst.StreamStats(id)
			if !ok {
				t.Fatal("adopted stream missing from target stats")
			}
			refStats, _ := ref.StreamStats(id)
			if gotStats.Seq != refStats.Seq || gotStats.Alerts != refStats.Alerts ||
				gotStats.Threshold != refStats.Threshold {
				t.Fatalf("final stats diverged:\n got %+v\nwant %+v", gotStats, refStats)
			}
		})
	}
}

// TestHandoffUnknownStream: handing off a stream that does not exist is
// a clean ErrUnknownStream, not a panic or a hang.
func TestHandoffUnknownStream(t *testing.T) {
	r := newHistRegistry(t, ingest.Config{})
	if _, err := r.Handoff("ghost"); !errors.Is(err, ingest.ErrUnknownStream) {
		t.Fatalf("Handoff(ghost) = %v", err)
	}
}

// TestAdoptSeqConflict: the seq-ordered install rule — adopting state
// older than the local stream's assigned boundary must be refused with
// ErrSeqConflict, and the newer local stream must survive untouched.
func TestAdoptSeqConflict(t *testing.T) {
	r := specRegistry(t, "knn+sw+musigma+al", nil, 0)
	donor := specRegistry(t, "knn+sw+musigma+al", nil, 0)
	for i := 0; i < 10; i++ {
		if _, err := donor.Observe("s", vec(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	hs, err := donor.Handoff("s")
	if err != nil {
		t.Fatal(err)
	}
	// The local twin is further along than the shipped state.
	for i := 0; i < 25; i++ {
		if _, err := r.Observe("s", vec(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Adopt("s", hs.Snapshot, hs.Tail); !errors.Is(err, ingest.ErrSeqConflict) {
		t.Fatalf("Adopt over a newer stream = %v, want ErrSeqConflict", err)
	}
	st, ok := r.StreamStats("s")
	if !ok || st.Seq != 25 {
		t.Fatalf("local stream damaged by refused adopt: %+v ok=%v", st, ok)
	}
	// The other direction installs: a fresh stream behind the shipped
	// state is replaced.
	r2 := specRegistry(t, "knn+sw+musigma+al", nil, 0)
	for i := 0; i < 3; i++ {
		if _, err := r2.Observe("s", vec(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r2.Adopt("s", hs.Snapshot, hs.Tail); err != nil {
		t.Fatalf("Adopt over an older stream = %v", err)
	}
	if st, _ := r2.StreamStats("s"); st.Seq != 10 {
		t.Fatalf("adopted stream at seq %d, want 10", st.Seq)
	}
}

// TestWALTailSemantics: WALTail serves records >= from, reports the
// consumed boundary, and distinguishes "rotated away" (ErrWALRotated,
// resync from the snapshot boundary) from merely empty tails. Without a
// store it is ErrNoStore; unknown ids are ErrUnknownStream.
func TestWALTailSemantics(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := newHistRegistry(t, ingest.Config{Store: store})
	for i := 0; i < 8; i++ {
		if _, err := r.Observe("s", vec(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, seqDone, err := r.WALTail("s", 3)
	if err != nil {
		t.Fatal(err)
	}
	if seqDone != 8 {
		t.Fatalf("seqDone = %d, want 8", seqDone)
	}
	if len(recs) != 5 || recs[0].Seq != 3 || recs[len(recs)-1].Seq != 7 {
		t.Fatalf("tail from 3 = %d records [%v..], want seqs 3..7", len(recs), recs[0].Seq)
	}
	if recs, _, err := r.WALTail("s", 100); err != nil || len(recs) != 0 {
		t.Fatalf("tail past the end = %d records, %v", len(recs), err)
	}
	if _, _, err := r.WALTail("ghost", 0); !errors.Is(err, ingest.ErrUnknownStream) {
		t.Fatalf("tail of unknown stream = %v", err)
	}
	noStore := newHistRegistry(t, ingest.Config{})
	if _, err := noStore.Observe("s", vec(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := noStore.WALTail("s", 0); !errors.Is(err, ingest.ErrNoStore) {
		t.Fatalf("tail without store = %v", err)
	}
}
