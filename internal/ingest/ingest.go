// Package ingest is the sharded ingestion layer between the HTTP
// transport and the detectors: the fleet-scale front end the monitor's
// "thousands of independent device streams" story needs. The stream
// registry is split into N shards (FNV-1a hash of the stream id, one
// mutex per shard), so stream lookup and creation never serialize the
// whole fleet behind one lock the way the first server did.
//
// Every stream owns a bounded queue of pending vectors. Admission
// assigns a per-stream sequence number and obeys the configured
// overload policy:
//
//   - Block (default): the producer waits for queue space — the
//     backpressure behaviour of the original synchronous endpoint.
//   - Shed: a full queue rejects the vector with ErrOverload; the HTTP
//     layer turns that into 429 + Retry-After.
//   - DropOldest: the oldest queued vector is discarded (its waiter gets
//     a Dropped result) and the new one is admitted.
//
// A micro-batching dispatcher drains each queue: whoever admits a vector
// into an idle stream becomes (or spawns) that stream's dispatcher,
// which repeatedly grabs the entire queue and scores it in one locked
// detector pass — one lock acquisition and one cache-warm detector
// session for however many vectors accumulated, instead of one per
// vector. Per-stream order is total: sequence numbers are assigned under
// the queue lock and processed in assignment order, so scores are
// bit-identical to the serial path.
//
// The registry also owns what the server used to do per stream behind a
// global mutex: WAL-before-score durability, background snapshots,
// restore-on-startup (and lazy restore after eviction), and optional
// TTL eviction of idle streams.
package ingest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"streamad/internal/cascade"
	"streamad/internal/core"
	"streamad/internal/ensemble"
	"streamad/internal/persist"
	"streamad/internal/pool"
	"streamad/internal/score"
)

// Stepper is the per-stream detector contract (streamad.StreamDetector
// satisfies it).
type Stepper interface {
	Step(s []float64) (core.Result, bool)
}

// Checkpointer is the contract a detector must add to Stepper for the
// registry to persist it (streamad.Detector and streamad.Ensemble
// satisfy it).
type Checkpointer interface {
	Save() ([]byte, error)
	Load([]byte) error
}

// MemberStatser is the optional Stepper extension implemented by
// ensemble-backed detectors: per-member counters, agreement and weights,
// surfaced in stream stats and /metrics.
type MemberStatser interface {
	MemberStats() []ensemble.MemberStat
}

// CascadeStatser is the optional Stepper extension implemented by
// cascade-backed detectors (streamad.Cascade): the per-tier
// screened/admitted/forwarded counters, surfaced in stream stats and the
// streamad_cascade_* metric families.
type CascadeStatser interface {
	CascadeStats() cascade.Stats
}

// ErrOverload is returned by admission under the Shed policy when the
// stream's queue is full. Producers should back off for the configured
// RetryAfter hint and retry.
var ErrOverload = errors.New("ingest: stream queue full")

// ErrUnknownStream is returned by lookups for ids the registry has never
// seen (or has evicted without persisted state).
var ErrUnknownStream = errors.New("ingest: unknown stream")

// errEvicted makes an admission that raced the TTL evictor retry against
// a freshly created (or restored) stream.
var errEvicted = errors.New("ingest: stream evicted")

// Config assembles a Registry.
type Config struct {
	// NewDetector builds a detector for a new stream id (required).
	NewDetector func(stream string) (Stepper, error)
	// NewThresholder builds the per-stream alert policy (default: a
	// streaming 0.99-quantile).
	NewThresholder func(stream string) score.Thresholder
	// Shards is the number of registry shards (default 8).
	Shards int
	// QueueDepth bounds each stream's pending-vector queue (default 64).
	QueueDepth int
	// Overload picks what admission does when a queue is full
	// (default Block).
	Overload Policy
	// RetryAfter is the back-off hint attached to shed vectors
	// (default 1s).
	RetryAfter time.Duration
	// MaxStreams bounds the number of live streams across all shards
	// (default 1024).
	MaxStreams int
	// StreamTTL, when positive, evicts streams with no observes for the
	// TTL: the stream is checkpointed (when a Store is configured) and
	// unloaded, freeing its MaxStreams slot. A later observe transparently
	// restores it from the checkpoint. Without a Store the eviction
	// discards the detector state.
	StreamTTL time.Duration
	// EvictInterval is the idle-scan period (default StreamTTL/4,
	// clamped to [10ms, 30s]).
	EvictInterval time.Duration
	// Store, when set, makes the registry durable: every admitted vector
	// is appended to the stream's WAL before it is scored, snapshots are
	// taken in the background, and RestoreStreams rebuilds state on
	// startup.
	Store *persist.Store
	// SnapshotInterval is how often the background snapshotter
	// checkpoints streams with WAL entries outstanding (0 disables timed
	// snapshots).
	SnapshotInterval time.Duration
	// SnapshotEvery checkpoints a stream once this many vectors
	// accumulate in its WAL, independent of the timer (0 disables the
	// entry trigger).
	SnapshotEvery int
	// Logf receives persistence and eviction diagnostics
	// (default: discard).
	Logf func(format string, args ...interface{})
	// ScorePool is the shared scoring pool stream dispatchers run on. When
	// nil the registry creates and owns one sized to GOMAXPROCS; when set
	// (e.g. so ensembles share the same workers) the caller owns it.
	ScorePool *pool.Pool
	// WarmAfter, when positive (requires Store), demotes streams with no
	// observes for the duration from hot to warm: the detector's window
	// state is paged to the snapshot store while the model stays resident.
	// The next observe transparently pages it back in. Combined with
	// StreamTTL > WarmAfter this yields the hot/warm/cold residency
	// ladder; detectors that don't implement core.Pager stay hot until
	// cold eviction.
	WarmAfter time.Duration
}

// Tier is a stream's residency tier. Cold streams are not resident at
// all (checkpointed and unloaded), so only Hot and Warm appear on live
// streams.
type Tier int32

const (
	// TierHot streams are fully resident.
	TierHot Tier = iota
	// TierWarm streams keep the model resident with window state paged to
	// the snapshot store.
	TierWarm
)

// String names the tier for stats and metrics labels.
func (t Tier) String() string {
	if t == TierWarm {
		return "warm"
	}
	return "hot"
}

// Registry is the sharded stream registry.
type Registry struct {
	cfg     Config
	shards  []*shard
	nlive   atomic.Int64 // live streams, bounded by MaxStreams
	met     ingestMetrics
	history atomic.Int64 // streams ever created (diagnostics)
	pool    *pool.Pool   // scoring pool dispatchers run on
	ownPool bool         // the registry created pool and must close it

	snapStop  chan struct{}
	snapDone  chan struct{}
	snapKick  chan string
	evictStop chan struct{}
	evictDone chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// shard is one slice of the registry: a mutex plus the streams hashing
// to it. The shard lock guards only membership (lookup, create, evict);
// scoring never holds it.
type shard struct {
	//streamad:membership — guards lookup/create/evict only; never held across a detector pass.
	mu      sync.Mutex
	streams map[string]*stream
}

// stream is one stream's queue plus detector state. Two locks split the
// fast paths: qmu guards admission (queue, seq, busy flag) and procMu
// serializes detector passes with snapshots and stats reads. A
// dispatcher holds procMu once per drained batch, not once per vector.
type stream struct {
	id string

	qmu     sync.Mutex
	notFull sync.Cond // signalled when the dispatcher drains the queue
	queue   []item
	busy    bool   // a dispatcher is draining this stream
	closed  bool   // evicted; admissions must retry against a new stream
	seq     uint64 // next sequence number to assign

	dispatchFn func() // preallocated pool task: run this stream's dispatcher

	procMu   sync.Mutex
	det      Stepper
	th       score.Thresholder
	tier     atomic.Int32 // Tier; transitions under procMu, read lock-free
	seqDone  uint64       // all records with seq < seqDone are scored (or skipped)
	walSince int          // WAL appends since the last snapshot
	snapSeq  uint64       // seq boundary of the last written snapshot; WAL tails below it are gone

	// The observable counters are atomics written under procMu but read
	// lock-free, so GET /v1/streams and /metrics never stall behind an
	// in-flight detector pass (which can run for milliseconds on large
	// ensembles).
	steps  atomic.Int64 // vectors consumed by the detector pass
	ready  atomic.Int64 // scored (post-warmup) steps
	alerts atomic.Int64
	thBits atomic.Uint64 // math.Float64bits of the last-seen threshold

	lastTouch atomic.Int64 // unix nanos of the last admission
}

// item is one queued vector and the promise its producer waits on.
type item struct {
	seq  uint64
	vec  []float64
	done chan Result
}

// Result is the outcome of one admitted vector. Exactly one of the
// normal fields (Ready/score set), Dropped, BadShape or Err describes
// what happened; Seq is always the vector's per-stream sequence number.
type Result struct {
	Seq           uint64
	Ready         bool
	Score         float64
	Nonconformity float64
	Threshold     float64
	Alert         bool
	FineTuned     bool
	// Source names the tier or member that produced the score, for
	// composite detectors ("tier0:zscore", "heavy:knn+sw+musigma+al");
	// empty for single-pipeline detectors.
	Source string
	// Dropped marks a vector discarded by the DropOldest policy before
	// it reached the detector.
	Dropped bool
	// BadShape marks a vector the detector rejected (dimension mismatch).
	BadShape bool
	// Err is a persistence failure; the vector was not consumed.
	Err error
}

// Ack is the admission receipt for one enqueued vector: its assigned
// sequence number and the channel its Result will arrive on.
type Ack struct {
	Seq  uint64
	Done <-chan Result
}

// New validates the configuration and returns a running Registry.
//
//streamad:lifecycle — owns the snapshotter and evictor goroutines; Close joins them.
func New(cfg Config) (*Registry, error) {
	if cfg.NewDetector == nil {
		return nil, fmt.Errorf("ingest: NewDetector is required")
	}
	if cfg.NewThresholder == nil {
		cfg.NewThresholder = func(string) score.Thresholder {
			return score.NewQuantileThresholder(0.99)
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.WarmAfter > 0 && cfg.Store == nil {
		return nil, fmt.Errorf("ingest: WarmAfter requires a Store to page window state to")
	}
	r := &Registry{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	if cfg.ScorePool != nil {
		r.pool = cfg.ScorePool
	} else {
		r.pool = pool.NewScoring(0)
		r.ownPool = true
	}
	for i := range r.shards {
		r.shards[i] = &shard{streams: make(map[string]*stream)}
	}
	if cfg.Store != nil {
		r.snapStop = make(chan struct{})
		r.snapDone = make(chan struct{})
		r.snapKick = make(chan string, 64)
		go r.snapshotter()
	}
	// One maintenance loop serves both recency policies; it wakes at a
	// quarter of the shortest configured horizon.
	wake := cfg.StreamTTL
	if cfg.WarmAfter > 0 && (wake <= 0 || cfg.WarmAfter < wake) {
		wake = cfg.WarmAfter
	}
	if wake > 0 {
		iv := cfg.EvictInterval
		if iv <= 0 {
			iv = wake / 4
		}
		if iv < 10*time.Millisecond {
			iv = 10 * time.Millisecond
		}
		if iv > 30*time.Second {
			iv = 30 * time.Second
		}
		r.evictStop = make(chan struct{})
		r.evictDone = make(chan struct{})
		go r.evictor(iv)
	}
	return r, nil
}

// ScorePoolStats snapshots the scoring pool's load.
func (r *Registry) ScorePoolStats() pool.Stats { return r.pool.Stats() }

// RetryAfter is the back-off hint producers should honour after a shed.
func (r *Registry) RetryAfter() time.Duration { return r.cfg.RetryAfter }

// shardFor hashes a stream id to its shard (FNV-1a).
func (r *Registry) shardFor(id string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return r.shards[h%uint32(len(r.shards))]
}

// shardIndex is shardFor's index twin, for stats labelling.
func (r *Registry) shardIndex(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(len(r.shards)))
}

// getOrCreate returns the live stream for id, creating (or restoring
// from the store, if it holds state for the id) on first use. The shard
// lock is held across detector construction, so concurrent first
// observes of the same id build exactly one detector; streams on other
// shards are unaffected.
func (r *Registry) getOrCreate(id string) (*stream, error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.streams[id]; ok {
		return st, nil
	}
	if int(r.nlive.Load()) >= r.cfg.MaxStreams {
		return nil, fmt.Errorf("ingest: stream limit %d reached", r.cfg.MaxStreams)
	}
	st, _, err := r.buildStream(id)
	if err != nil {
		return nil, err
	}
	sh.streams[id] = st
	r.nlive.Add(1)
	r.history.Add(1)
	return st, nil
}

// newStream wires a bare stream (no detector state yet).
func (r *Registry) newStream(id string, det Stepper, th score.Thresholder) *stream {
	st := &stream{id: id, det: det, th: th}
	st.notFull.L = &st.qmu
	st.thBits.Store(math.Float64bits(th.Threshold()))
	st.dispatchFn = func() { r.dispatch(st) }
	// Stamp creation as a touch: without it a concurrent evictor pass in
	// the window before admit's own stamp sees lastTouch == 0 and evicts
	// the stream the moment it is born.
	st.lastTouch.Store(time.Now().UnixNano())
	return st
}

// Observe admits one vector and waits for its score: the synchronous
// single-vector path. If the stream was idle the calling goroutine
// doubles as the dispatcher (the combining-lock pattern), so a lone
// producer pays no handoff; under contention its pass also drains
// whatever concurrent producers queued behind it.
func (r *Registry) Observe(id string, vec []float64) (Result, error) {
	st, it, start, err := r.admit(id, vec)
	if err != nil {
		return Result{}, err
	}
	if start {
		r.dispatch(st)
	}
	return <-it.done, nil
}

// Enqueue admits one vector asynchronously and returns its Ack; the
// batch endpoint uses it to queue a whole NDJSON batch before waiting,
// which is what lets the dispatcher coalesce same-stream records into
// one detector pass. The dispatcher hop runs as a scoring-pool task, not
// a spawned goroutine, so concurrency stays O(workers) however many
// streams are live.
func (r *Registry) Enqueue(id string, vec []float64) (Ack, error) {
	st, it, start, err := r.admit(id, vec)
	if err != nil {
		return Ack{}, err
	}
	if start {
		r.pool.Submit(st.dispatchFn)
	}
	return Ack{Seq: it.seq, Done: it.done}, nil
}

// admit resolves the stream and enqueues under the overload policy,
// retrying when it races the TTL evictor.
func (r *Registry) admit(id string, vec []float64) (*stream, item, bool, error) {
	for {
		st, err := r.getOrCreate(id)
		if err != nil {
			return nil, item{}, false, err
		}
		st.lastTouch.Store(time.Now().UnixNano())
		it, start, err := r.enqueue(st, vec)
		if errors.Is(err, errEvicted) {
			continue
		}
		if err != nil {
			return nil, item{}, false, err
		}
		return st, it, start, nil
	}
}

// enqueue admits one vector into the stream's bounded queue. The boolean
// reports whether the caller must run a dispatcher for the stream.
func (r *Registry) enqueue(st *stream, vec []float64) (item, bool, error) {
	st.qmu.Lock()
	for {
		if st.closed {
			st.qmu.Unlock()
			return item{}, false, errEvicted
		}
		if len(st.queue) < r.cfg.QueueDepth {
			break
		}
		switch r.cfg.Overload {
		case Shed:
			st.qmu.Unlock()
			r.met.shed.Add(1)
			return item{}, false, ErrOverload
		case DropOldest:
			old := st.queue[0]
			copy(st.queue, st.queue[1:])
			st.queue = st.queue[:len(st.queue)-1]
			old.done <- Result{Seq: old.seq, Dropped: true}
			r.met.dropped.Add(1)
		default: // Block: wait for the dispatcher to drain the queue
			st.notFull.Wait()
		}
	}
	it := item{seq: st.seq, vec: vec, done: make(chan Result, 1)}
	st.seq++
	st.queue = append(st.queue, it)
	start := !st.busy
	if start {
		st.busy = true
	}
	st.qmu.Unlock()
	return it, start, nil
}

// dispatch drains the stream: it repeatedly swaps the whole queue out
// and scores it in one procMu-locked pass, exiting only when the queue
// is empty. Exactly one dispatcher runs per stream (the busy flag), so
// items are processed in sequence-number order.
func (r *Registry) dispatch(st *stream) {
	for {
		st.qmu.Lock()
		batch := st.queue
		st.queue = nil
		if len(batch) == 0 {
			st.busy = false
			// Wake quiesce waiters (Handoff) as well as blocked producers:
			// busy=false with an empty queue is the drained state they poll.
			st.notFull.Broadcast()
			st.qmu.Unlock()
			return
		}
		st.notFull.Broadcast()
		st.qmu.Unlock()
		r.met.observeBatch(len(batch))
		st.procMu.Lock()
		if err := r.ensureResident(st); err != nil {
			// The stream cannot score without its paged window state; fail
			// the batch rather than step a hollow detector.
			for _, it := range batch {
				it.done <- Result{Seq: it.seq, Err: fmt.Errorf("ingest: page in %q: %w", st.id, err)}
			}
			st.procMu.Unlock()
			continue
		}
		for _, it := range batch {
			it.done <- r.processLocked(st, it)
		}
		st.procMu.Unlock()
	}
}

// processLocked logs and scores one vector; the caller holds st.procMu.
func (r *Registry) processLocked(st *stream, it item) Result {
	if r.cfg.Store != nil {
		// Log before scoring: a vector the WAL cannot hold is not
		// consumed, so the on-disk state never lags what the detector has
		// seen.
		if err := r.cfg.Store.Append(st.id, it.seq, it.vec); err != nil {
			return Result{Seq: it.seq, Err: fmt.Errorf("persist: %w", err)}
		}
		st.walSince++
		if r.cfg.SnapshotEvery > 0 && st.walSince >= r.cfg.SnapshotEvery {
			select {
			case r.snapKick <- st.id:
			default: // snapshotter busy; the next trigger catches it
			}
		}
	}
	st.steps.Add(1)
	st.seqDone = it.seq + 1
	res, out := safeStep(st.det, it.vec)
	if !out.ok {
		if out.panicked {
			return Result{Seq: it.seq, BadShape: true}
		}
		return Result{Seq: it.seq} // warming up
	}
	st.ready.Add(1)
	rs := Result{
		Seq:           it.seq,
		Ready:         true,
		Score:         res.Score,
		Nonconformity: res.Nonconformity,
		FineTuned:     res.FineTuned,
		Source:        res.Source,
	}
	// Read the boundary before Alert consumes the score, as the serial
	// path always has: the quantile policy reports +Inf until warm.
	rs.Threshold = st.th.Threshold()
	if st.th.Alert(res.Score) {
		rs.Alert = true
		st.alerts.Add(1)
	}
	st.thBits.Store(math.Float64bits(st.th.Threshold()))
	return rs
}

// stepOutcome distinguishes "warming up" from "panicked on bad input".
type stepOutcome struct {
	ok       bool
	panicked bool
}

// safeStep runs the detector step, converting dimension-mismatch panics
// (the detectors' contract for programmer error) into client errors.
func safeStep(det Stepper, v []float64) (res core.Result, out stepOutcome) {
	defer func() {
		if recover() != nil {
			out = stepOutcome{ok: false, panicked: true}
		}
	}()
	r, ready := det.Step(v)
	if !ready {
		return core.Result{}, stepOutcome{}
	}
	return r, stepOutcome{ok: true}
}

// evictor is the idle-stream maintenance loop: warm paging first (so a
// stream can pass through hot→warm→cold on successive scans), then cold
// eviction.
func (r *Registry) evictor(interval time.Duration) {
	defer close(r.evictDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.evictStop:
			return
		case <-t.C:
			now := time.Now()
			r.PageIdle(now)
			r.EvictIdle(now)
		}
	}
}

// EvictIdle checkpoints and unloads every stream whose last observe is
// older than StreamTTL as of now, and returns how many it evicted.
// Streams with queued or in-flight work are skipped. The checkpoint is
// written while the shard lock is held, so a concurrent observe of the
// same id cannot recreate the stream until its state is safely on disk;
// the recreation then restores from exactly that checkpoint.
func (r *Registry) EvictIdle(now time.Time) int {
	if r.cfg.StreamTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-r.cfg.StreamTTL).UnixNano()
	evicted := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		for id, st := range sh.streams {
			if st.lastTouch.Load() > cutoff {
				continue
			}
			st.qmu.Lock()
			idle := len(st.queue) == 0 && !st.busy
			if idle {
				st.closed = true
				st.notFull.Broadcast()
			}
			st.qmu.Unlock()
			if !idle {
				continue
			}
			if r.cfg.Store != nil {
				if err := r.finalCheckpoint(id, st); err != nil {
					r.cfg.Logf("streamad: evict %q: checkpoint failed, stream kept: %v", id, err)
					st.qmu.Lock()
					st.closed = false
					st.qmu.Unlock()
					continue
				}
				// The page file (if any) duplicates the snapshot; the restore
				// path rebuilds from snapshot + WAL.
				if err := r.cfg.Store.RemovePage(id); err != nil {
					r.cfg.Logf("streamad: evict %q: %v", id, err)
				}
			}
			// Settle background training before the detector is dropped so
			// eviction cannot leak an in-flight trainer or queued pool job.
			st.procMu.Lock()
			if c, ok := st.det.(interface{ Close() }); ok {
				c.Close()
			}
			st.procMu.Unlock()
			if Tier(st.tier.Load()) == TierWarm {
				r.met.warmToCold.Add(1)
			} else {
				r.met.hotToCold.Add(1)
			}
			delete(sh.streams, id)
			r.nlive.Add(-1)
			r.met.evicted.Add(1)
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted
}

// finalCheckpoint snapshots a stream about to be unloaded, skipping the
// write when the on-disk snapshot is already current.
func (r *Registry) finalCheckpoint(id string, st *stream) error {
	st.procMu.Lock()
	dirty := st.walSince > 0
	st.procMu.Unlock()
	if !dirty {
		return nil
	}
	return r.snapshotStream(id, st)
}

// StreamInfo is an instantaneous snapshot of one stream's observable
// state, captured under the stream's own locks — never a registry-wide
// one — so collecting it does not stall ingestion on other streams.
type StreamInfo struct {
	ID        string
	Shard     int
	Seq       uint64 // sequence numbers assigned so far
	Steps     int    // vectors consumed by the detector
	Ready     int
	Alerts    int
	QueueLen  int
	Threshold float64
	Tier      string                // residency tier ("hot" or "warm"; cold streams are not listed)
	Members   []ensemble.MemberStat // ensemble-backed streams only
	// Cascade carries the per-tier screening counters for cascade-backed
	// streams (nil otherwise). Like Members it needs the detector
	// quiescent, so it is omitted when the stream is mid-pass.
	Cascade *cascade.Stats
	// FineTune carries the detector's serve/train split statistics when
	// it exposes them (nil otherwise). Read from lock-free atomics, so
	// the scrape never waits on an in-flight processing pass.
	FineTune *core.FineTuneStats
}

// FineTuneStatser is the optional detector capability surfacing
// fine-tuning statistics (streamad.Detector and streamad.Ensemble both
// implement it).
type FineTuneStatser interface {
	FineTuneStats() core.FineTuneStats
}

// Streams snapshots every live stream's counters. The per-shard locks
// are held only to collect the stream pointers; counters are then read
// under each stream's locks, and the caller encodes entirely lock-free.
func (r *Registry) Streams() []StreamInfo {
	var all []*stream
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, st := range sh.streams {
			all = append(all, st)
		}
		sh.mu.Unlock()
	}
	out := make([]StreamInfo, 0, len(all))
	for _, st := range all {
		out = append(out, r.streamInfo(st))
	}
	return out
}

// StreamStats reports one stream's snapshot.
func (r *Registry) StreamStats(id string) (StreamInfo, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	st, ok := sh.streams[id]
	sh.mu.Unlock()
	if !ok {
		return StreamInfo{}, false
	}
	return r.streamInfo(st), true
}

func (r *Registry) streamInfo(st *stream) StreamInfo {
	st.qmu.Lock()
	info := StreamInfo{ID: st.id, Seq: st.seq, QueueLen: len(st.queue)}
	st.qmu.Unlock()
	info.Shard = r.shardIndex(st.id)
	info.Steps = int(st.steps.Load())
	info.Ready = int(st.ready.Load())
	info.Alerts = int(st.alerts.Load())
	info.Threshold = math.Float64frombits(st.thBits.Load())
	info.Tier = Tier(st.tier.Load()).String()
	// Member detail needs the detector quiescent; rather than stall the
	// scrape behind an in-flight pass, omit it when the stream is busy —
	// the counters above are still fresh.
	if ms, ok := st.det.(MemberStatser); ok && st.procMu.TryLock() {
		info.Members = ms.MemberStats()
		st.procMu.Unlock()
	}
	if cs, ok := st.det.(CascadeStatser); ok && st.procMu.TryLock() {
		stats := cs.CascadeStats()
		info.Cascade = &stats
		st.procMu.Unlock()
	}
	if fs, ok := st.det.(FineTuneStatser); ok {
		ft := fs.FineTuneStats()
		info.FineTune = &ft
	}
	return info
}

// Close stops the background loops and takes a final checkpoint of every
// dirty stream. It does not close the store — the caller that opened it
// owns that. Safe to call more than once.
func (r *Registry) Close() error {
	r.closeOnce.Do(func() {
		if r.evictStop != nil {
			close(r.evictStop)
			<-r.evictDone
		}
		if r.snapStop != nil {
			close(r.snapStop)
			<-r.snapDone
		}
		r.closeErr = r.SnapshotAll()
		if r.ownPool {
			r.pool.Close()
		}
	})
	return r.closeErr
}
