package ingest_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"streamad"
	"streamad/internal/core"
	"streamad/internal/ingest"
	"streamad/internal/persist"
	"streamad/internal/score"
)

// histDetector is a deterministic, history-dependent, deliberately
// concurrency-unsafe stub: its score folds every past vector into an
// accumulator, so any reordering or concurrent stepping of one stream's
// vectors changes the scores (and trips the race detector).
type histDetector struct {
	warm int
	n    int
	acc  float64
}

func (d *histDetector) Step(v []float64) (core.Result, bool) {
	if len(v) != 2 {
		panic("dim mismatch")
	}
	d.n++
	d.acc = 0.9*d.acc + v[0] + 0.01*float64(d.n)
	if d.n <= d.warm {
		return core.Result{}, false
	}
	s := 0.5 + 0.5*math.Tanh(d.acc)
	return core.Result{Score: s, Nonconformity: s}, true
}

// gateDetector blocks every Step until the release channel yields, and
// reports each entry on entered — the lever the overload tests use to
// hold a stream's dispatcher mid-pass while its queue fills.
type gateDetector struct {
	entered chan struct{}
	release chan struct{}
	n       int
}

func (d *gateDetector) Step(v []float64) (core.Result, bool) {
	select {
	case d.entered <- struct{}{}:
	default:
	}
	<-d.release
	d.n++
	return core.Result{Score: 0.1, Nonconformity: 0.1}, true
}

func newHistRegistry(t *testing.T, cfg ingest.Config) *ingest.Registry {
	t.Helper()
	if cfg.NewDetector == nil {
		cfg.NewDetector = func(string) (ingest.Stepper, error) {
			return &histDetector{warm: 2}, nil
		}
	}
	if cfg.NewThresholder == nil {
		cfg.NewThresholder = func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.9}
		}
	}
	r, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// vec builds stream s's i-th vector, deterministically.
func vec(s, i int) []float64 {
	return []float64{math.Sin(float64(s) + float64(i)/9), math.Cos(float64(i) / 7)}
}

func TestPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ingest.Policy
	}{
		{"block", ingest.Block},
		{"shed", ingest.Shed},
		{"drop-oldest", ingest.DropOldest},
	} {
		got, err := ingest.ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Policy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ingest.ParsePolicy("lossy"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

// TestObserveMatchesSerialDetector: the queued, dispatched path must be
// bit-identical to stepping the detector and thresholder by hand.
func TestObserveMatchesSerialDetector(t *testing.T) {
	r := newHistRegistry(t, ingest.Config{})
	ref := &histDetector{warm: 2}
	refTh := &score.StaticThresholder{T: 0.9}
	for i := 0; i < 100; i++ {
		v := vec(1, i)
		got, err := r.Observe("s", v)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != uint64(i) {
			t.Fatalf("step %d: seq %d", i, got.Seq)
		}
		res, ok := ref.Step(v)
		if got.Ready != ok {
			t.Fatalf("step %d: ready %v, want %v", i, got.Ready, ok)
		}
		if !ok {
			continue
		}
		if got.Score != res.Score {
			t.Fatalf("step %d: score %v, want %v (must be bit-identical)", i, got.Score, res.Score)
		}
		if got.Threshold != refTh.Threshold() || got.Alert != refTh.Alert(res.Score) {
			t.Fatalf("step %d: threshold/alert diverged", i)
		}
	}
}

// TestConcurrentStreamsBitIdentical drives 24 streams from 24 goroutines
// through one registry and asserts every stream's scores match a serial
// reference run exactly — the sharded, batched path must not perturb
// per-stream state. Run with -race.
func TestConcurrentStreamsBitIdentical(t *testing.T) {
	const streams, n = 24, 150
	r := newHistRegistry(t, ingest.Config{Shards: 4, QueueDepth: 8})
	var wg sync.WaitGroup
	results := make([][]ingest.Result, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			id := fmt.Sprintf("dev-%d", s)
			results[s] = make([]ingest.Result, n)
			for i := 0; i < n; i++ {
				res, err := r.Observe(id, vec(s, i))
				if err != nil {
					t.Errorf("stream %d step %d: %v", s, i, err)
					return
				}
				results[s][i] = res
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for s := 0; s < streams; s++ {
		ref := &histDetector{warm: 2}
		for i := 0; i < n; i++ {
			got := results[s][i]
			if got.Seq != uint64(i) {
				t.Fatalf("stream %d: non-monotonic seq %d at step %d", s, got.Seq, i)
			}
			res, ok := ref.Step(vec(s, i))
			if got.Ready != ok || (ok && got.Score != res.Score) {
				t.Fatalf("stream %d step %d: score %v/%v, want %v/%v", s, i, got.Ready, got.Score, ok, res.Score)
			}
		}
	}
}

// TestSharedStreamSeqPermutation hammers a few streams from many
// producers at once: per-stream sequence numbers must come out as a
// permutation of 0..N-1 (no duplicates, no losses) even under heavy
// admission contention.
func TestSharedStreamSeqPermutation(t *testing.T) {
	const streams, producers, perProducer = 4, 6, 40
	r := newHistRegistry(t, ingest.Config{Shards: 2, QueueDepth: 4})
	var mu sync.Mutex
	seqs := make(map[string][]uint64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := fmt.Sprintf("shared-%d", (p+i)%streams)
				res, err := r.Observe(id, vec(p, i))
				if err != nil {
					t.Errorf("observe: %v", err)
					return
				}
				mu.Lock()
				seqs[id] = append(seqs[id], res.Seq)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	total := 0
	for id, got := range seqs {
		seen := make(map[uint64]bool, len(got))
		for _, q := range got {
			if seen[q] {
				t.Fatalf("stream %s: duplicate seq %d", id, q)
			}
			seen[q] = true
		}
		for q := 0; q < len(got); q++ {
			if !seen[uint64(q)] {
				t.Fatalf("stream %s: missing seq %d in %d results", id, q, len(got))
			}
		}
		total += len(got)
	}
	if total != producers*perProducer {
		t.Fatalf("lost results: %d of %d", total, producers*perProducer)
	}
}

// TestShedPolicy saturates a depth-1 queue behind a gated detector and
// expects admission to fail fast with ErrOverload.
func TestShedPolicy(t *testing.T) {
	gate := &gateDetector{entered: make(chan struct{}, 1), release: make(chan struct{})}
	r := newHistRegistry(t, ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) { return gate, nil },
		QueueDepth:  1,
		Overload:    ingest.Shed,
	})
	a1, err := r.Enqueue("hot", vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // dispatcher holds vector 0 inside Step; queue is empty
	a2, err := r.Enqueue("hot", vec(0, 1))
	if err != nil {
		t.Fatal(err) // fills the queue to its bound
	}
	if _, err := r.Enqueue("hot", vec(0, 2)); !errors.Is(err, ingest.ErrOverload) {
		t.Fatalf("saturated enqueue = %v, want ErrOverload", err)
	}
	if r.RetryAfter() <= 0 {
		t.Fatal("no Retry-After hint")
	}
	close(gate.release)
	r1, r2 := <-a1.Done, <-a2.Done
	if r1.Seq != 0 || r2.Seq != 1 || !r1.Ready || !r2.Ready {
		t.Fatalf("survivors = %+v, %+v", r1, r2)
	}
	if got := r.Stats().ShedTotal; got != 1 {
		t.Fatalf("ShedTotal = %d, want 1", got)
	}
}

// TestDropOldest: a full queue discards its oldest waiter, which gets a
// Dropped result; newer vectors keep flowing with monotonic sequence
// numbers.
func TestDropOldest(t *testing.T) {
	gate := &gateDetector{entered: make(chan struct{}, 1), release: make(chan struct{})}
	r := newHistRegistry(t, ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) { return gate, nil },
		QueueDepth:  2,
		Overload:    ingest.DropOldest,
	})
	a0, err := r.Enqueue("hot", vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // vector 0 is mid-Step; the queue is free again
	var acks []ingest.Ack
	for i := 1; i <= 3; i++ { // 1 and 2 fill the queue; 3 evicts 1
		a, err := r.Enqueue("hot", vec(0, i))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, a)
	}
	dropped := <-acks[0].Done
	if !dropped.Dropped || dropped.Seq != 1 {
		t.Fatalf("oldest waiter = %+v, want Dropped seq 1", dropped)
	}
	close(gate.release)
	for i, a := range []ingest.Ack{a0, acks[1], acks[2]} {
		res := <-a.Done
		if res.Dropped || !res.Ready {
			t.Fatalf("survivor %d = %+v", i, res)
		}
	}
	st := r.Stats()
	if st.DroppedTotal != 1 || st.ShedTotal != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBatchCoalescing: vectors queued while the dispatcher is inside one
// detector pass must drain as a single follow-up batch, visible in the
// batch-size histogram.
func TestBatchCoalescing(t *testing.T) {
	gate := &gateDetector{entered: make(chan struct{}, 1), release: make(chan struct{})}
	r := newHistRegistry(t, ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) { return gate, nil },
		QueueDepth:  64,
	})
	first, err := r.Enqueue("s", vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered
	var acks []ingest.Ack
	for i := 1; i <= 10; i++ {
		a, err := r.Enqueue("s", vec(0, i))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, a)
	}
	close(gate.release)
	<-first.Done
	for _, a := range acks {
		<-a.Done
	}
	st := r.Stats()
	if st.Batches != 2 || st.BatchSizeSum != 11 {
		t.Fatalf("batches = %d (sum %d), want the 10 queued vectors coalesced into one pass after the first", st.Batches, st.BatchSizeSum)
	}
}

func TestStreamLimit(t *testing.T) {
	r := newHistRegistry(t, ingest.Config{MaxStreams: 2})
	for i := 0; i < 2; i++ {
		if _, err := r.Observe(fmt.Sprintf("s%d", i), vec(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Observe("s2", vec(2, 0)); err == nil {
		t.Fatal("third stream admitted past MaxStreams=2")
	}
}

// knnConfig is a cheap real detector with full checkpoint support, for
// the eviction tests.
func knnConfig() streamad.Config {
	return streamad.Config{
		Model: streamad.ModelKNN, Task1: streamad.TaskSlidingWindow,
		Task2: streamad.TaskRegular, Score: streamad.ScoreAverage,
		Channels: 2, Window: 8, TrainSize: 20, WarmupVectors: 30, Seed: 3,
	}
}

// TestEvictIdleRestoresFromStore: an idle stream is checkpointed and
// unloaded; its next observe transparently restores it, and the scores
// continue bit-identically with an uninterrupted reference run.
func TestEvictIdleRestoresFromStore(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) { return streamad.New(knnConfig()) },
		NewThresholder: func(string) score.Thresholder {
			return score.NewQuantileThresholder(0.95)
		},
		Store:     store,
		StreamTTL: time.Hour, // the background evictor never fires; EvictIdle is driven by hand
	}
	r := newHistRegistry(t, cfg)
	refDet, err := streamad.New(knnConfig())
	if err != nil {
		t.Fatal(err)
	}
	refTh := score.NewQuantileThresholder(0.95)
	check := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			v := vec(0, i)
			got, err := r.Observe("dev", v)
			if err != nil {
				t.Fatal(err)
			}
			if got.Seq != uint64(i) {
				t.Fatalf("step %d: seq %d (sequence must survive eviction)", i, got.Seq)
			}
			res, ok := refDet.Step(v)
			if got.Ready != ok || (ok && got.Score != res.Score) {
				t.Fatalf("step %d: score %v/%v, want %v/%v", i, got.Ready, got.Score, ok, res.Score)
			}
			if ok {
				refTh.Alert(res.Score)
			}
		}
	}
	check(0, 60)

	if n := r.EvictIdle(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	if infos := r.Streams(); len(infos) != 0 {
		t.Fatalf("stream still resident after eviction: %+v", infos)
	}
	if st := r.Stats(); st.EvictedTotal != 1 || st.Streams != 0 {
		t.Fatalf("stats after eviction = %+v", st)
	}

	check(60, 120) // transparently restored, bit-identical continuation
	if st := r.Stats(); st.StreamsTotal != 2 {
		t.Fatalf("StreamsTotal = %d, want 2 (created, evicted, recreated)", st.StreamsTotal)
	}
}

// TestEvictIdleWithoutStoreDiscards: without a store, eviction unloads
// the stream and frees its MaxStreams slot; the next observe starts a
// fresh detector at sequence zero.
func TestEvictIdleWithoutStoreDiscards(t *testing.T) {
	r := newHistRegistry(t, ingest.Config{MaxStreams: 1, StreamTTL: time.Hour})
	if _, err := r.Observe("a", vec(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Observe("b", vec(0, 0)); err == nil {
		t.Fatal("MaxStreams=1 admitted a second stream")
	}
	if n := r.EvictIdle(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	res, err := r.Observe("b", vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 0 {
		t.Fatalf("fresh stream seq = %d", res.Seq)
	}
}

// TestEvictIdleSkipsBusyStreams: a stream with a vector mid-pass (or
// queued) must not be evicted out from under its dispatcher.
func TestEvictIdleSkipsBusyStreams(t *testing.T) {
	gate := &gateDetector{entered: make(chan struct{}, 1), release: make(chan struct{})}
	r := newHistRegistry(t, ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) { return gate, nil },
		StreamTTL:   time.Hour,
	})
	a, err := r.Enqueue("busy", vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered
	if n := r.EvictIdle(time.Now().Add(2 * time.Hour)); n != 0 {
		t.Fatalf("evicted %d busy stream(s)", n)
	}
	close(gate.release)
	if res := <-a.Done; !res.Ready {
		t.Fatalf("busy stream's vector lost: %+v", res)
	}
}
