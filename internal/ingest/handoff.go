// Stream handoff: the registry side of cluster migration and failover.
// A stream leaves a node as a snapshot plus WAL tail (Handoff), enters a
// node by replaying exactly that state (Adopt) or by promoting an
// already-warm replica (Install), and is tailed remotely by sequence
// number (WALTail). Every transfer carries a CRC-32C fingerprint of the
// live state; because Save/Load round-trips are bit-identical (the PR 1
// restore invariant), the target recomputing the same fingerprint after
// replay proves the migrated stream will score future vectors exactly as
// the uninterrupted source would have.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"

	"streamad/internal/persist"
	"streamad/internal/score"
)

// ErrWALRotated reports a WAL tail request from below the last snapshot
// boundary: the records are gone, folded into the snapshot. The follower
// must refetch the snapshot and resume tailing from its Seq.
var ErrWALRotated = errors.New("ingest: WAL rotated past the requested sequence")

// ErrSeqConflict reports an install refused because the local stream has
// already assigned more sequence numbers than the incoming state has
// consumed — installing it would time-travel the stream backwards.
var ErrSeqConflict = errors.New("ingest: stream already live at a later sequence")

// ErrNoStore reports an operation that needs a configured state dir.
var ErrNoStore = errors.New("ingest: operation requires a state dir")

// handoffCRC is the CRC-32C table for state fingerprints (the same
// polynomial persist uses for file integrity).
var handoffCRC = crc32.MakeTable(crc32.Castagnoli)

// HandoffState is everything a target node needs to adopt a stream: the
// snapshot, the WAL records at or past its Seq, and the fingerprint of
// the source's live state that the target must reproduce.
type HandoffState struct {
	Snapshot    *persist.StreamSnapshot
	Tail        []persist.WALRecord
	Fingerprint uint32
}

// fingerprint canonically encodes a stream's live state — sequence
// boundary, serving counters, detector and thresholder blobs — and
// returns its CRC-32C. The caller must own the stream (procMu held, or
// not yet published).
func fingerprint(st *stream) (uint32, error) {
	ck, ok := st.det.(Checkpointer)
	if !ok {
		return 0, fmt.Errorf("ingest: detector %T does not support checkpointing", st.det)
	}
	detBlob, err := ck.Save()
	if err != nil {
		return 0, err
	}
	thBlob, err := marshalThresholder(st.th)
	if err != nil {
		return 0, err
	}
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:8], st.seqDone)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(st.ready.Load()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(st.alerts.Load()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(detBlob)))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(thBlob)))
	sum := crc32.Update(0, handoffCRC, hdr[:])
	sum = crc32.Update(sum, handoffCRC, detBlob)
	return crc32.Update(sum, handoffCRC, thBlob), nil
}

// Handoff quiesces a stream and detaches it for migration: admissions
// are closed, the queue drains, the state is captured, and the stream
// leaves the registry. After a successful Handoff the id is unknown
// locally (a racing observe may recreate it fresh; the seq-ordered
// conflict rule in install resolves that when the migration lands
// elsewhere or is reinstated). On capture failure the stream reopens
// untouched.
func (r *Registry) Handoff(id string) (*HandoffState, error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	st, ok := sh.streams[id]
	sh.mu.Unlock()
	if !ok {
		return nil, ErrUnknownStream
	}
	// Quiesce: close admissions, then wait for the dispatcher to drain
	// the queue. The dispatcher broadcasts notFull both when it swaps a
	// batch out and when it exits, so this loop always wakes.
	st.qmu.Lock()
	if st.closed {
		st.qmu.Unlock()
		return nil, ErrUnknownStream // lost a race with eviction or another handoff
	}
	st.closed = true
	st.notFull.Broadcast()
	for st.busy || len(st.queue) > 0 {
		st.notFull.Wait()
	}
	st.qmu.Unlock()
	st.procMu.Lock()
	hs, err := func() (*HandoffState, error) {
		// A warm stream's fingerprint needs its window state resident.
		if err := r.ensureResident(st); err != nil {
			return nil, err
		}
		return r.capture(id, st)
	}()
	st.procMu.Unlock()
	if err != nil {
		st.qmu.Lock()
		st.closed = false
		st.qmu.Unlock()
		return nil, err
	}
	sh.mu.Lock()
	if sh.streams[id] == st {
		delete(sh.streams, id)
		r.nlive.Add(-1)
	}
	sh.mu.Unlock()
	return hs, nil
}

// capture assembles the HandoffState of a quiesced stream; the caller
// holds st.procMu. With a healthy on-disk snapshot + WAL the shipped
// state is exactly what a local restart would replay; otherwise (no
// store, or damaged WAL) a fresh checkpoint of the live state ships with
// an empty tail.
func (r *Registry) capture(id string, st *stream) (*HandoffState, error) {
	fp, err := fingerprint(st)
	if err != nil {
		return nil, err
	}
	hs := &HandoffState{Fingerprint: fp}
	if r.cfg.Store != nil {
		snap, err := r.cfg.Store.ReadSnapshot(id)
		if err == nil {
			recs, walErr := r.cfg.Store.ReadWAL(id)
			if walErr == nil {
				hs.Snapshot = snap
				for _, rec := range recs {
					if rec.Seq >= snap.Seq {
						hs.Tail = append(hs.Tail, rec)
					}
				}
				return hs, nil
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	snap, err := buildSnapshot(id, st)
	if err != nil {
		return nil, err
	}
	hs.Snapshot = snap
	return hs, nil
}

// Adopt installs a stream shipped from another node: a fresh detector
// and thresholder are built, the snapshot is loaded, the WAL tail is
// replayed with restore semantics, and the result is published under the
// seq-ordered conflict rule. It returns the adopted state's fingerprint;
// the migration protocol acknowledges only when it matches the source's.
func (r *Registry) Adopt(id string, snap *persist.StreamSnapshot, tail []persist.WALRecord) (uint32, error) {
	det, err := r.cfg.NewDetector(id)
	if err != nil {
		return 0, err
	}
	st := r.newStream(id, det, r.cfg.NewThresholder(id))
	if err := loadSnapshotInto(st, snap); err != nil {
		return 0, err
	}
	replayRecords(st, tail)
	fp, err := fingerprint(st)
	if err != nil {
		return 0, err
	}
	if err := r.install(st); err != nil {
		return 0, err
	}
	return fp, nil
}

// Install publishes an already-live detector/thresholder pair as a
// stream — the failover path, promoting a warm standby replica that has
// been tailing the failed owner's WAL. seq is the replica's consumed
// boundary; ready and alerts seed the serving counters.
func (r *Registry) Install(id string, det Stepper, th score.Thresholder, seq uint64, ready, alerts int64) error {
	st := r.newStream(id, det, th)
	st.seq = seq
	st.seqDone = seq
	st.steps.Store(int64(seq))
	st.ready.Store(ready)
	st.alerts.Store(alerts)
	st.thBits.Store(math.Float64bits(th.Threshold()))
	return r.install(st)
}

// install publishes an unshared stream under the conflict rule: an
// existing stream survives only if it has assigned more sequence numbers
// than the incoming state has consumed — otherwise it is closed and
// replaced (its queued items finish on the detached object). With a
// store the new stream is immediately checkpointed, so a restart
// recovers it even though its WAL starts mid-sequence.
func (r *Registry) install(st *stream) error {
	st.lastTouch.Store(time.Now().UnixNano())
	sh := r.shardFor(st.id)
	sh.mu.Lock()
	old, exists := sh.streams[st.id]
	if exists {
		old.qmu.Lock()
		oldSeq := old.seq
		if oldSeq > st.seq {
			old.qmu.Unlock()
			sh.mu.Unlock()
			return fmt.Errorf("%w: %q at seq %d, refusing to install state at seq %d",
				ErrSeqConflict, st.id, oldSeq, st.seq)
		}
		old.closed = true
		old.notFull.Broadcast()
		old.qmu.Unlock()
	} else if int(r.nlive.Load()) >= r.cfg.MaxStreams {
		sh.mu.Unlock()
		return fmt.Errorf("ingest: stream limit %d reached", r.cfg.MaxStreams)
	}
	sh.streams[st.id] = st
	if !exists {
		r.nlive.Add(1)
	}
	r.history.Add(1)
	sh.mu.Unlock()
	if exists {
		// The replaced stream's queued items finish on the detached
		// object; drain its in-flight fine-tunes so no trainer-pool task
		// outlives the replacement holding stale state.
		old.procMu.Lock()
		if c, ok := old.det.(interface{ Close() }); ok {
			c.Close()
		}
		old.procMu.Unlock()
	}
	if r.cfg.Store == nil {
		return nil
	}
	if err := r.snapshotStream(st.id, st); err != nil {
		// Without an anchoring checkpoint a restart would replay this
		// stream's mid-sequence WAL into a fresh detector and diverge
		// silently; fail the install instead.
		sh.mu.Lock()
		if sh.streams[st.id] == st {
			delete(sh.streams, st.id)
			if !exists {
				r.nlive.Add(-1)
			}
		}
		sh.mu.Unlock()
		return err
	}
	return nil
}

// WALTail returns the stream's WAL records with seq >= from, plus the
// stream's consumed boundary (seqDone). A request from below the last
// snapshot rotation returns ErrWALRotated with the snapshot boundary the
// follower must resync from.
func (r *Registry) WALTail(id string, from uint64) ([]persist.WALRecord, uint64, error) {
	if r.cfg.Store == nil {
		return nil, 0, ErrNoStore
	}
	sh := r.shardFor(id)
	sh.mu.Lock()
	st, ok := sh.streams[id]
	sh.mu.Unlock()
	if !ok {
		return nil, 0, ErrUnknownStream
	}
	st.procMu.Lock()
	defer st.procMu.Unlock()
	if from < st.snapSeq {
		return nil, st.snapSeq, ErrWALRotated
	}
	recs, err := r.cfg.Store.ReadWAL(id)
	if err != nil && !errors.Is(err, persist.ErrTornWAL) {
		return nil, 0, err
	}
	var out []persist.WALRecord
	for _, rec := range recs {
		if rec.Seq >= from {
			out = append(out, rec)
		}
	}
	return out, st.seqDone, nil
}

// Logf forwards to the registry's configured diagnostic logger, so
// embedders (the server's cluster endpoints) report through the same
// sink as the registry's own background loops.
func (r *Registry) Logf(format string, args ...any) { r.cfg.Logf(format, args...) }

// DropPersisted deletes a stream's on-disk snapshot and WAL — the last
// step of a migration out, once the target has acknowledged the
// fingerprint, so a restart does not resurrect the stream here.
func (r *Registry) DropPersisted(id string) error {
	if r.cfg.Store == nil {
		return nil
	}
	return r.cfg.Store.Remove(id)
}
