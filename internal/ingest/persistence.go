// Durability for the ingestion layer: WAL-backed observes, background
// snapshots and crash recovery, moved here from internal/server when the
// registry was sharded. Everything in this file is inert unless
// Config.Store is set.
//
// The recovery invariant: a stream's on-disk state is a snapshot taken
// at sequence number S plus a WAL holding every vector from some point
// ≤ S onward (appends precede scoring; rotation follows the snapshot
// rename). Restoring loads the snapshot and re-steps exactly the records
// with seq ≥ S, so a process killed at any instant resumes with the same
// detector state — and therefore the same future scores — as a process
// that never died. Under the DropOldest policy shed history is simply
// absent from the WAL; replay skips the gaps the same way the live
// stream did.
package ingest

import (
	"encoding"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"streamad/internal/core"
	"streamad/internal/persist"
	"streamad/internal/score"
)

// RestoreStreams rebuilds every stream persisted in the configured
// store. It must be called before the registry takes traffic. The
// returned warnings describe tolerated damage (a torn WAL tail from a
// mid-write crash); hard corruption — bad magic, version or CRC —
// aborts with an error so damaged state is never half-loaded silently.
func (r *Registry) RestoreStreams() (restored int, warnings []string, err error) {
	if r.cfg.Store == nil {
		return 0, nil, nil
	}
	ids, err := r.cfg.Store.IDs()
	if err != nil {
		return 0, nil, err
	}
	for _, id := range ids {
		if int(r.nlive.Load()) >= r.cfg.MaxStreams {
			return restored, warnings, fmt.Errorf("ingest: stream limit %d reached while restoring %q", r.cfg.MaxStreams, id)
		}
		sh := r.shardFor(id)
		sh.mu.Lock()
		if _, ok := sh.streams[id]; ok {
			sh.mu.Unlock()
			continue
		}
		st, warn, err := r.buildStream(id)
		if err != nil {
			sh.mu.Unlock()
			return restored, warnings, fmt.Errorf("ingest: restore stream %q: %w", id, err)
		}
		sh.streams[id] = st
		r.nlive.Add(1)
		r.history.Add(1)
		sh.mu.Unlock()
		warnings = append(warnings, warn...)
		restored++
	}
	return restored, warnings, nil
}

// buildStream constructs the stream for an id, restoring from the store
// when it holds state (a snapshot, a WAL, or both) — which is also how a
// TTL-evicted stream comes back on its next observe. Without persisted
// state it is simply a fresh detector.
func (r *Registry) buildStream(id string) (*stream, []string, error) {
	det, err := r.cfg.NewDetector(id)
	if err != nil {
		return nil, nil, err
	}
	st := r.newStream(id, det, r.cfg.NewThresholder(id))
	if r.cfg.Store == nil {
		return st, nil, nil
	}
	var warnings []string
	hadState := true
	snap, err := r.cfg.Store.ReadSnapshot(id)
	if errors.Is(err, os.ErrNotExist) {
		// No snapshot yet: replay whatever WAL exists from scratch.
		hadState = false
		snap = &persist.StreamSnapshot{ID: id}
	} else if err != nil {
		return nil, nil, err
	}
	if err := loadSnapshotInto(st, snap); err != nil {
		return nil, nil, err
	}

	recs, walErr := r.cfg.Store.ReadWAL(id)
	if walErr != nil {
		if !errors.Is(walErr, persist.ErrTornWAL) {
			return nil, nil, walErr
		}
		warnings = append(warnings, fmt.Sprintf("stream %q: %v (replaying the intact prefix)", id, walErr))
	}
	if len(recs) > 0 {
		hadState = true
	}
	rejected := replayRecords(st, recs)
	if rejected > 0 {
		warnings = append(warnings, fmt.Sprintf(
			"stream %q: skipped %d WAL record(s) the detector rejected when first observed", id, rejected))
	}
	if hadState {
		r.met.coldToHot.Add(1)
	}
	return st, warnings, nil
}

// LoadSnapshotState loads a snapshot's detector and thresholder blobs
// into a live pair. It is shared by the registry restore path and the
// cluster standby replicas, so an out-of-registry replica lands in
// exactly the state a restored stream would.
func LoadSnapshotState(det Stepper, th score.Thresholder, snap *persist.StreamSnapshot) error {
	if len(snap.Detector) > 0 {
		ck, ok := det.(Checkpointer)
		if !ok {
			return fmt.Errorf("detector %T does not support checkpointing", det)
		}
		if err := ck.Load(snap.Detector); err != nil {
			return err
		}
	}
	if len(snap.Threshold) > 0 {
		u, ok := th.(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("thresholder %T does not support checkpointing", th)
		}
		if err := u.UnmarshalBinary(snap.Threshold); err != nil {
			return err
		}
	}
	return nil
}

// ReplayVector steps one logged vector through a detector/thresholder
// pair with the registry's exact replay semantics: a panicking detector
// rejects the vector (the live path returned BadShape for it), a warming
// detector consumes it silently, and a ready score feeds the alert
// policy. Cluster standby replicas use it to tail a WAL bit-identically.
func ReplayVector(det Stepper, th score.Thresholder, vec []float64) (ready, alert, rejected bool) {
	res, out := safeStep(det, vec)
	if out.panicked {
		return false, false, true
	}
	if !out.ok {
		return false, false, false
	}
	return true, th.Alert(res.Score), false
}

// loadSnapshotInto applies a snapshot to an unshared stream: blobs,
// sequence boundary and serving counters.
func loadSnapshotInto(st *stream, snap *persist.StreamSnapshot) error {
	if err := LoadSnapshotState(st.det, st.th, snap); err != nil {
		return err
	}
	st.seq = snap.Seq
	st.seqDone = snap.Seq
	st.snapSeq = snap.Seq
	st.steps.Store(int64(snap.Seq))
	st.ready.Store(int64(snap.Ready))
	st.alerts.Store(int64(snap.Alerts))
	st.thBits.Store(math.Float64bits(st.th.Threshold()))
	return nil
}

// replayRecords re-steps WAL records at or past the stream's current
// boundary into an unshared (or procMu-held) stream, mirroring the live
// dispatcher's outcome handling, and returns how many records the
// detector rejected. Sequence gaps (drop-oldest sheds) replay as the
// live stream experienced them: skipped.
func replayRecords(st *stream, recs []persist.WALRecord) (rejected int) {
	for _, rec := range recs {
		if rec.Seq < st.seqDone {
			continue // already folded into the snapshot
		}
		st.seq = rec.Seq + 1
		st.seqDone = rec.Seq + 1
		st.steps.Store(int64(rec.Seq) + 1)
		st.walSince++
		ready, alert, rej := ReplayVector(st.det, st.th, rec.Vector)
		if rej {
			rejected++
			continue
		}
		if ready {
			st.ready.Add(1)
			if alert {
				st.alerts.Add(1)
			}
		}
	}
	st.thBits.Store(math.Float64bits(st.th.Threshold()))
	return rejected
}

// snapshotter is the background checkpoint loop: a timer pass over all
// dirty streams plus per-stream kicks when a WAL crosses SnapshotEvery.
func (r *Registry) snapshotter() {
	defer close(r.snapDone)
	var tick <-chan time.Time
	if r.cfg.SnapshotInterval > 0 {
		t := time.NewTicker(r.cfg.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-r.snapStop:
			return
		case <-tick:
			r.SnapshotAll()
		case id := <-r.snapKick:
			sh := r.shardFor(id)
			sh.mu.Lock()
			st := sh.streams[id]
			sh.mu.Unlock()
			if st != nil {
				if err := r.snapshotStream(id, st); err != nil {
					r.cfg.Logf("streamad: snapshot %q: %v", id, err)
				}
			}
		}
	}
}

// SnapshotAll checkpoints every stream with WAL entries outstanding and
// returns the first error encountered (all streams are still attempted).
func (r *Registry) SnapshotAll() error {
	if r.cfg.Store == nil {
		return nil
	}
	type entry struct {
		id string
		st *stream
	}
	var all []entry
	for _, sh := range r.shards {
		sh.mu.Lock()
		for id, st := range sh.streams {
			all = append(all, entry{id, st})
		}
		sh.mu.Unlock()
	}
	var first error
	for _, e := range all {
		e.st.procMu.Lock()
		dirty := e.st.walSince > 0
		e.st.procMu.Unlock()
		if !dirty {
			continue
		}
		if err := r.snapshotStream(e.id, e.st); err != nil {
			r.cfg.Logf("streamad: snapshot %q: %v", e.id, err)
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// snapshotStream checkpoints one stream: it captures the detector and
// thresholder under the stream's processing lock, writes the snapshot
// atomically and rotates the WAL. Holding procMu across the disk write
// is what makes "snapshot then rotate" atomic with respect to the
// dispatcher's appends.
func (r *Registry) snapshotStream(id string, st *stream) error {
	st.procMu.Lock()
	defer st.procMu.Unlock()
	return r.snapshotLocked(id, st)
}

// snapshotLocked is snapshotStream's body for callers (the page-out
// path) that already hold st.procMu.
func (r *Registry) snapshotLocked(id string, st *stream) error {
	if p, ok := st.det.(core.Pager); ok && p.Paged() {
		return nil // demotion already snapshotted; the WAL is empty
	}
	snap, err := buildSnapshot(id, st)
	if err != nil {
		return err
	}
	if err := r.cfg.Store.WriteSnapshot(snap); err != nil {
		return err
	}
	st.walSince = 0
	st.snapSeq = snap.Seq
	return nil
}

// buildSnapshot captures a stream's current state; the caller holds
// st.procMu. The snapshot's Seq is the processed-prefix boundary: queued
// vectors with higher sequence numbers have not been WAL-appended yet,
// so rotating the WAL under procMu cannot lose them.
func buildSnapshot(id string, st *stream) (*persist.StreamSnapshot, error) {
	ck, ok := st.det.(Checkpointer)
	if !ok {
		return nil, fmt.Errorf("ingest: detector %T does not support checkpointing", st.det)
	}
	detBlob, err := ck.Save()
	if err != nil {
		return nil, err
	}
	thBlob, err := marshalThresholder(st.th)
	if err != nil {
		return nil, err
	}
	return &persist.StreamSnapshot{
		ID:        id,
		Seq:       st.seqDone,
		Detector:  detBlob,
		Threshold: thBlob,
		Ready:     int(st.ready.Load()),
		Alerts:    int(st.alerts.Load()),
	}, nil
}

// marshalThresholder snapshots the alert policy. A thresholder without
// binary support is stored empty and comes back fresh on restore — alert
// counters still persist, only the policy's warm state is lost.
func marshalThresholder(th score.Thresholder) ([]byte, error) {
	m, ok := th.(encoding.BinaryMarshaler)
	if !ok {
		return nil, nil
	}
	return m.MarshalBinary()
}

// Snapshot builds a fresh checkpoint of one stream (the serving layer's
// GET /v1/streams/{id}/snapshot). When a store is configured the
// checkpoint is also persisted, so the call doubles as "force a snapshot
// now". Returns ErrUnknownStream for ids the registry does not hold.
func (r *Registry) Snapshot(id string) (*persist.StreamSnapshot, error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	st, ok := sh.streams[id]
	sh.mu.Unlock()
	if !ok {
		return nil, ErrUnknownStream
	}
	st.procMu.Lock()
	defer st.procMu.Unlock()
	if err := r.ensureResident(st); err != nil {
		return nil, err
	}
	snap, err := buildSnapshot(id, st)
	if err != nil {
		return nil, err
	}
	if r.cfg.Store != nil {
		if err := r.cfg.Store.WriteSnapshot(snap); err != nil {
			return nil, err
		}
		st.walSince = 0
		st.snapSeq = snap.Seq
	}
	return snap, nil
}
