package ingest_test

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"streamad/internal/core"
	"streamad/internal/ingest"
	"streamad/internal/score"
)

// benchDetector is a cheap arithmetic detector: enough floating-point
// work per Step to resemble a light model without drowning the
// registry's own overhead (the thing under measurement).
type benchDetector struct {
	acc float64
}

func (d *benchDetector) Step(v []float64) (core.Result, bool) {
	for _, x := range v {
		d.acc = 0.99*d.acc + math.Abs(x)
	}
	s := 0.5 + 0.5*math.Tanh(d.acc*0.01)
	return core.Result{Score: s, Nonconformity: s}, true
}

func benchRegistry(b *testing.B, shards int) *ingest.Registry {
	b.Helper()
	r, err := ingest.New(ingest.Config{
		NewDetector: func(string) (ingest.Stepper, error) {
			return &benchDetector{}, nil
		},
		NewThresholder: func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.9}
		},
		Shards:     shards,
		QueueDepth: 256,
		MaxStreams: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r
}

// BenchmarkObserveSingle is the synchronous one-vector-per-call path:
// every producer goroutine round-trips one vector at a time across 256
// streams. RunParallel supplies GOMAXPROCS producers.
func BenchmarkObserveSingle(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := benchRegistry(b, shards)
			vec := []float64{0.3, -0.2, 0.7, 0.1}
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := fmt.Sprintf("s-%d", ctr.Add(1)%256)
					if _, err := r.Observe(id, vec); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkObserveBatched is the NDJSON-endpoint shape: enqueue a burst
// of 64 vectors (8 streams × 8 vectors, interleaved) and then collect
// the acks, letting the dispatcher coalesce same-stream runs into one
// locked pass.
func BenchmarkObserveBatched(b *testing.B) {
	const batch, streams = 64, 8
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := benchRegistry(b, shards)
			vec := []float64{0.3, -0.2, 0.7, 0.1}
			var ctr atomic.Uint64
			b.SetBytes(0)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				acks := make([]ingest.Ack, 0, batch)
				for pb.Next() {
					// One iteration = one 64-vector burst, so ns/op is
					// directly comparable to 64× the single path.
					base := ctr.Add(1) * streams
					acks = acks[:0]
					for i := 0; i < batch; i++ {
						id := fmt.Sprintf("s-%d", (base+uint64(i%streams))%256)
						a, err := r.Enqueue(id, vec)
						if err != nil {
							b.Error(err)
							return
						}
						acks = append(acks, a)
					}
					for _, a := range acks {
						<-a.Done
					}
				}
			})
		})
	}
}
