package usad

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"streamad/internal/nn"
)

// state is the serializable form of USAD: the three networks, the input
// normalization, the adversarial schedule position and both optimizers'
// Adam moments, so resumed fine-tuning continues the exact trajectory.
type state struct {
	Dim    int
	Latent int
	Epoch  int
	Enc    []byte
	Dec1   []byte
	Dec2   []byte
	Scaler []byte
	Opt1   []byte
	Opt2   []byte
}

// opt1Params and opt2Params return the parameter lists the two objectives
// step, in the exact order Fit uses them.
func (m *Model) opt1Params() []*nn.Param { return append(m.enc.Params(), m.dec1.Params()...) }
func (m *Model) opt2Params() []*nn.Param { return append(m.enc.Params(), m.dec2.Params()...) }

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	enc, err := m.enc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	d1, err := m.dec1.MarshalBinary()
	if err != nil {
		return nil, err
	}
	d2, err := m.dec2.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sc, err := m.scaler.MarshalBinary()
	if err != nil {
		return nil, err
	}
	o1, err := nn.SaveOptimizer(m.opt1, m.opt1Params())
	if err != nil {
		return nil, err
	}
	o2, err := nn.SaveOptimizer(m.opt2, m.opt2Params())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(state{
		Dim: m.dim, Latent: m.latent, Epoch: m.epoch,
		Enc: enc, Dec1: d1, Dec2: d2, Scaler: sc, Opt1: o1, Opt2: o2,
	})
	if err != nil {
		return nil, fmt.Errorf("usad: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver must
// have been constructed with the same Config dimensions.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("usad: decode: %w", err)
	}
	if st.Dim != m.dim || st.Latent != m.latent {
		return fmt.Errorf("usad: snapshot (dim=%d z=%d) does not match model (dim=%d z=%d)",
			st.Dim, st.Latent, m.dim, m.latent)
	}
	if err := m.enc.UnmarshalBinary(st.Enc); err != nil {
		return err
	}
	if err := m.dec1.UnmarshalBinary(st.Dec1); err != nil {
		return err
	}
	if err := m.dec2.UnmarshalBinary(st.Dec2); err != nil {
		return err
	}
	if err := m.scaler.UnmarshalBinary(st.Scaler); err != nil {
		return err
	}
	if err := nn.LoadOptimizer(m.opt1, m.opt1Params(), st.Opt1); err != nil {
		return err
	}
	if err := nn.LoadOptimizer(m.opt2, m.opt2Params(), st.Opt2); err != nil {
		return err
	}
	m.epoch = st.Epoch
	return nil
}
