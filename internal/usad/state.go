package usad

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// state is the serializable form of USAD: the three networks, the input
// normalization and the adversarial schedule position.
type state struct {
	Dim    int
	Latent int
	Epoch  int
	Enc    []byte
	Dec1   []byte
	Dec2   []byte
	Scaler []byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	enc, err := m.enc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	d1, err := m.dec1.MarshalBinary()
	if err != nil {
		return nil, err
	}
	d2, err := m.dec2.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sc, err := m.scaler.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(state{
		Dim: m.dim, Latent: m.latent, Epoch: m.epoch,
		Enc: enc, Dec1: d1, Dec2: d2, Scaler: sc,
	})
	if err != nil {
		return nil, fmt.Errorf("usad: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver must
// have been constructed with the same Config dimensions.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("usad: decode: %w", err)
	}
	if st.Dim != m.dim || st.Latent != m.latent {
		return fmt.Errorf("usad: snapshot (dim=%d z=%d) does not match model (dim=%d z=%d)",
			st.Dim, st.Latent, m.dim, m.latent)
	}
	if err := m.enc.UnmarshalBinary(st.Enc); err != nil {
		return err
	}
	if err := m.dec1.UnmarshalBinary(st.Dec1); err != nil {
		return err
	}
	if err := m.dec2.UnmarshalBinary(st.Dec2); err != nil {
		return err
	}
	if err := m.scaler.UnmarshalBinary(st.Scaler); err != nil {
		return err
	}
	m.epoch = st.Epoch
	return nil
}
