package usad

import (
	"math"
	"math/rand"
	"testing"

	"streamad/internal/mat"
)

func sineSet(rng *rand.Rand, n, dim int) [][]float64 {
	set := make([][]float64, n)
	for i := range set {
		x := make([]float64, dim)
		for j := range x {
			x[j] = 2.5 + 1.5*math.Sin(0.3*float64(i+j)) + 0.2*rng.NormFloat64()
		}
		set[i] = x
	}
	return set
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("expected error for Dim=0")
	}
	m, err := New(Config{Dim: 64})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 64 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	if m.Latent() < 2 || m.Latent() >= 64 {
		t.Fatalf("Latent = %d", m.Latent())
	}
	if m.Epoch() != 0 {
		t.Fatalf("fresh Epoch = %d", m.Epoch())
	}
}

func TestAdversarialScheduleAdvances(t *testing.T) {
	m, _ := New(Config{Dim: 16, Seed: 1})
	set := sineSet(rand.New(rand.NewSource(1)), 20, 16)
	m.Fit(set)
	m.Fit(set)
	if m.Epoch() != 2 {
		t.Fatalf("Epoch = %d after two fits", m.Epoch())
	}
}

func TestLearnsToReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 64
	set := sineSet(rng, 150, dim)
	m, _ := New(Config{Dim: dim, Seed: 2})
	for e := 0; e < 12; e++ {
		m.Fit(set)
	}
	_, pred := m.Predict(set[7])
	if cos := mat.CosineSimilarity(set[7], pred); cos < 0.85 {
		t.Fatalf("USAD reconstruction cosine = %v, want > 0.85", cos)
	}
}

func TestAnomalyAmplification(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 64
	set := sineSet(rng, 150, dim)
	m, _ := New(Config{Dim: dim, Seed: 3})
	for e := 0; e < 12; e++ {
		m.Fit(set)
	}
	normal := set[9]
	anomalous := make([]float64, dim)
	copy(anomalous, normal)
	for j := 0; j < dim; j++ {
		anomalous[j] += 8
	}
	errOf := func(x []float64) float64 {
		_, pred := m.Predict(x)
		var s float64
		for i := range x {
			d := x[i] - pred[i]
			s += d * d
		}
		return s
	}
	if errOf(anomalous) <= errOf(normal)*3 {
		t.Fatalf("anomalous error %v should dwarf normal %v", errOf(anomalous), errOf(normal))
	}
}

func TestReconstructionsShapes(t *testing.T) {
	m, _ := New(Config{Dim: 32, Seed: 4})
	set := sineSet(rand.New(rand.NewSource(4)), 30, 32)
	m.Fit(set)
	r1, rBoth := m.Reconstructions(set[0])
	if len(r1) != 32 || len(rBoth) != 32 {
		t.Fatalf("shapes %d %d", len(r1), len(rBoth))
	}
	for _, v := range append(r1, rBoth...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite reconstruction")
		}
	}
}

func TestCloneIsIndependentSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dim := 32
	set := sineSet(rng, 60, dim)
	m, _ := New(Config{Dim: dim, Seed: 5})
	for e := 0; e < 5; e++ {
		m.Fit(set)
	}
	c := m.Clone()
	if c.Epoch() != m.Epoch() {
		t.Fatal("clone must carry the schedule counter")
	}
	_, before := c.Predict(set[0])
	snapshot := append([]float64(nil), before...)
	// Further training of the original must not affect the clone.
	for e := 0; e < 5; e++ {
		m.Fit(set)
	}
	_, after := c.Predict(set[0])
	for i := range snapshot {
		if snapshot[i] != after[i] {
			t.Fatal("clone shares parameters with original")
		}
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	m, _ := New(Config{Dim: 16})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestTrainingStaysFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dim := 24
	m, _ := New(Config{Dim: dim, Seed: 6})
	set := make([][]float64, 80)
	for i := range set {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64() * 100 // wild scale
		}
		set[i] = x
	}
	for e := 0; e < 20; e++ {
		m.Fit(set)
	}
	_, pred := m.Predict(set[0])
	for _, v := range pred {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("USAD diverged on wild-scale data")
		}
	}
}
