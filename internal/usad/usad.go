// Package usad implements USAD (Audibert et al., KDD 2020): an adversarial
// autoencoder with one shared encoder E and two decoders D₁, D₂. Training
// alternates two objectives whose adversarial weight grows with the epoch
// counter n:
//
//	L_AE1 = (1/n)·R₁ + ((n−1)/n)·R_both   (minimized by E, D₁)
//	L_AE2 = (1/n)·R₂ − ((n−1)/n)·R_both   (minimized by E, D₂)
//
// with R_i = ‖x − AE_i(x)‖² and R_both = ‖x − AE₂(AE₁(x))‖². AE₁ learns to
// reconstruct well enough that AE₂ cannot tell its output from real data,
// while AE₂ learns to amplify reconstruction errors — which is what makes
// the two-pass reconstruction sensitive to anomalies.
//
// As in the original implementation, inputs are min-max normalized to
// [0,1] (refreshed at every Fit, so the normalization is part of θ_model)
// and, as in the reference implementation, hidden layers use ReLU with
// sigmoid decoder outputs; the bounded decoders are what
// keep the adversarial maximization of R_both from diverging.
package usad

import (
	"fmt"
	"math/rand"

	"streamad/internal/nn"
	"streamad/internal/randstate"
)

// Model is a USAD adversarial autoencoder over min-max normalized inputs.
type Model struct {
	enc    *nn.MLP // E:  dim → z (3 FC layers)
	dec1   *nn.MLP // D₁: z → dim (3 FC layers)
	dec2   *nn.MLP // D₂: z → dim (3 FC layers)
	opt1   nn.Optimizer
	opt2   nn.Optimizer
	scaler *nn.MinMaxScaler
	dim    int
	latent int
	lr     float64   //streamad:transient learning rate fixed at construction; snapshots restore onto an identically-configured model
	epoch  int       // adversarial schedule counter n
	zbuf   []float64 //streamad:transient per-call scaling scratch, built by initScratch at construction
	// Alpha/Beta weight the two reconstruction errors in the inference
	// score ½·(α·R₁ + β·R_both); defaults 0.5/0.5.
	//
	//streamad:transient inference-score weights fixed at construction, not learned state
	Alpha, Beta float64

	// Preallocated training scratch: the adversarial steps run up to two
	// concurrent passes through E and D₂, so each in-flight pass gets its
	// own context; g1..g3 are the loss-gradient buffers and params1/2 the
	// cached per-objective parameter lists.
	encCtxA, encCtxB   *nn.MLPContext //streamad:transient training scratch, built by initScratch at construction
	dec1Ctx            *nn.MLPContext //streamad:transient training scratch, built by initScratch at construction
	dec2CtxA, dec2CtxB *nn.MLPContext //streamad:transient training scratch, built by initScratch at construction
	g1, g2, g3         []float64      //streamad:transient loss-gradient scratch, built by initScratch at construction
	outBuf             []float64      //streamad:transient forward-pass scratch, built by initScratch at construction
	params1, params2   []*nn.Param    //streamad:transient cached parameter lists, built by initScratch; Load copies weights in place so the pointers stay valid
}

// initScratch builds the reusable training/inference buffers; it must run
// after enc/dec1/dec2 are in place.
func (m *Model) initScratch() {
	m.encCtxA, m.encCtxB = m.enc.NewContext(), m.enc.NewContext()
	m.dec1Ctx = m.dec1.NewContext()
	m.dec2CtxA, m.dec2CtxB = m.dec2.NewContext(), m.dec2.NewContext()
	m.g1 = make([]float64, m.dim)
	m.g2 = make([]float64, m.dim)
	m.g3 = make([]float64, m.dim)
	m.outBuf = make([]float64, m.dim)
	m.zbuf = make([]float64, m.dim)
	m.params1 = append(append([]*nn.Param(nil), m.enc.Params()...), m.dec1.Params()...)
	m.params2 = append(append([]*nn.Param(nil), m.enc.Params()...), m.dec2.Params()...)
}

// Config parameterizes USAD.
type Config struct {
	// Dim is the flattened feature-vector length N·w.
	Dim int
	// Latent is the bottleneck width Z ≪ w (default max(Dim/8, 2)).
	Latent int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives weight initialization.
	Seed int64
}

// New returns an initialized USAD model.
func New(cfg Config) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("usad: Dim must be positive, got %d", cfg.Dim)
	}
	z := cfg.Latent
	if z == 0 {
		z = cfg.Dim / 8
	}
	if z < 2 {
		z = 2
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 1e-3
	}
	rng := rand.New(randstate.NewCountedSource(cfg.Seed))
	d := cfg.Dim
	h1, h2 := mid(d, z), mid2(d, z)
	encSizes := []int{d, h1, h2, z}
	decSizes := []int{z, h2, h1, d}
	m := &Model{
		enc:    nn.NewMLP(encSizes, nn.ReLU{}, nn.ReLU{}, rng),
		dec1:   nn.NewMLP(decSizes, nn.ReLU{}, nn.Sigmoid{}, rng),
		dec2:   nn.NewMLP(decSizes, nn.ReLU{}, nn.Sigmoid{}, rng),
		opt1:   nn.NewAdam(lr),
		opt2:   nn.NewAdam(lr),
		scaler: nn.NewMinMaxScaler(d),
		dim:    d,
		latent: z,
		lr:     lr,
		Alpha:  0.5,
		Beta:   0.5,
	}
	m.initScratch()
	return m, nil
}

// mid and mid2 pick intermediate layer widths between dim and latent.
func mid(d, z int) int {
	m := (d + z) / 2
	if m < z {
		m = z
	}
	return m
}

func mid2(d, z int) int {
	m := (d + 3*z) / 4
	if m < z {
		m = z
	}
	return m
}

// Clone returns a deep copy of the model parameters and adversarial
// schedule. The optimizers' moment estimates are not copied: a clone is
// intended as a frozen "before fine-tuning" snapshot (Figure 1); if it is
// trained further it starts with fresh Adam state.
func (m *Model) Clone() *Model {
	c := &Model{
		enc:    m.enc.Clone(),
		dec1:   m.dec1.Clone(),
		dec2:   m.dec2.Clone(),
		opt1:   nn.NewAdam(m.lr),
		opt2:   nn.NewAdam(m.lr),
		scaler: m.scaler.Clone(),
		dim:    m.dim,
		latent: m.latent,
		lr:     m.lr,
		epoch:  m.epoch,
		Alpha:  m.Alpha,
		Beta:   m.Beta,
	}
	c.initScratch()
	return c
}

// CloneModel returns a full-fidelity deep copy — weights, both
// optimizers' moment estimates, normalization and the adversarial
// schedule — for the asynchronous fine-tuning path. Unlike Clone, a
// CloneModel copy continues the exact training trajectory the original
// would have followed.
func (m *Model) CloneModel() any {
	c := m.Clone()
	oldAll := append(append(append([]*nn.Param(nil), m.enc.Params()...), m.dec1.Params()...), m.dec2.Params()...)
	newAll := append(append(append([]*nn.Param(nil), c.enc.Params()...), c.dec1.Params()...), c.dec2.Params()...)
	if opt := nn.CloneOptimizer(m.opt1, oldAll, newAll); opt != nil {
		c.opt1 = opt
	}
	if opt := nn.CloneOptimizer(m.opt2, oldAll, newAll); opt != nil {
		c.opt2 = opt
	}
	return c
}

// Dim returns the feature-vector length.
func (m *Model) Dim() int { return m.dim }

// Latent returns the bottleneck width.
func (m *Model) Latent() int { return m.latent }

// Epoch returns the adversarial schedule counter n.
func (m *Model) Epoch() int { return m.epoch }

// ae1 computes AE₁(x) = D₁(E(x)).
//
//streamad:hotpath
func (m *Model) ae1(x []float64) []float64 {
	return m.dec1.Predict(m.enc.Predict(x))
}

// Predict implements the framework model contract: target is the feature
// vector, prediction is the USAD inference reconstruction — the blend
// α·AE₁(x) + β·AE₂(AE₁(x)) mirroring the original paper's inference score
// α·R₁ + β·R_both — mapped back to the original space. The second term is
// the adversarially amplified two-pass reconstruction that makes the error
// spike on anomalous inputs.
//
//streamad:hotpath
func (m *Model) Predict(x []float64) (target, pred []float64) {
	if len(x) != m.dim {
		//streamad:ignore hotalloc panic message on shape violation only
		panic(fmt.Sprintf("usad: expected %d values, got %d", m.dim, len(x)))
	}
	z := m.scaler.Transform(x, m.zbuf)
	w1 := m.ae1(z)
	w3 := m.dec2.Predict(m.enc.Predict(w1))
	out := m.outBuf
	for i := range out {
		out[i] = m.Alpha*w1[i] + m.Beta*w3[i]
	}
	return x, m.scaler.Inverse(out, out)
}

// Reconstructions returns (AE₁(x), AE₂(AE₁(x))) in the original space for
// the blended inference score used by the Figure 1 experiment.
func (m *Model) Reconstructions(x []float64) (r1, rBoth []float64) {
	z := m.scaler.Transform(x, m.zbuf)
	w1 := m.ae1(z)
	w3 := m.dec2.Predict(m.enc.Predict(w1))
	return m.scaler.Inverse(w1, nil), m.scaler.Inverse(w3, nil)
}

// Fit refreshes the input scaler and runs one adversarial training epoch
// over the training set, incrementing the schedule counter n, exactly one
// optimizer step per sample per objective.
func (m *Model) Fit(set [][]float64) {
	m.scaler.Fit(set)
	m.epoch++
	n := float64(m.epoch)
	wRec := 1 / n
	wAdv := (n - 1) / n
	for _, x := range set {
		if len(x) != m.dim {
			continue
		}
		z := m.scaler.Transform(x, m.zbuf)
		m.stepAE1(z, wRec, wAdv)
		m.stepAE2(z, wRec, wAdv)
	}
}

// stepAE1 minimizes L_AE1 = wRec·R₁ + wAdv·R_both over (E, D₁). Gradients
// flow through D₂/E on the R_both path but only E and D₁ are stepped. The
// encoder runs two passes, each through its own preallocated context.
func (m *Model) stepAE1(x []float64, wRec, wAdv float64) {
	// Forward: z = E(x); w1 = D1(z); z3 = E(w1); w3 = D2(z3).
	z := m.enc.ForwardCtx(m.encCtxA, x)
	w1 := m.dec1.ForwardCtx(m.dec1Ctx, z)
	z3 := m.enc.ForwardCtx(m.encCtxB, w1)
	w3 := m.dec2.ForwardCtx(m.dec2CtxA, z3)

	// R₁ gradient path.
	_, g1 := nn.MSELoss(w1, x, m.g1)
	for i := range g1 {
		g1[i] *= wRec
	}
	// R_both gradient path (through D₂ and the second E pass into w1).
	_, g3 := nn.MSELoss(w3, x, m.g3)
	for i := range g3 {
		g3[i] *= wAdv
	}
	gz3 := m.dec2.BackwardCtx(m.dec2CtxA, g3)
	gw1FromBoth := m.enc.BackwardCtx(m.encCtxB, gz3)
	// Total gradient into w1 combines both paths, then flows through D₁, E.
	for i := range g1 {
		g1[i] += gw1FromBoth[i]
	}
	gz := m.dec1.BackwardCtx(m.dec1Ctx, g1)
	m.enc.BackwardCtx(m.encCtxA, gz)

	// Step only E and D₁; discard gradients parked on D₂.
	nn.ClipGrads(m.params1, 5)
	m.opt1.Step(m.params1)
	m.dec2.ZeroGrad()
}

// stepAE2 minimizes L_AE2 = wRec·R₂ − wAdv·R_both over (E, D₂). AE₁ output
// is treated as a constant on the R_both path.
func (m *Model) stepAE2(x []float64, wRec, wAdv float64) {
	// Forward: z = E(x); w2 = D2(z); w1 = AE1(x) (constant); z3 = E(w1);
	// w3 = D2(z3).
	z := m.enc.ForwardCtx(m.encCtxA, x)
	w2 := m.dec2.ForwardCtx(m.dec2CtxA, z)
	w1 := m.ae1(x)
	z3 := m.enc.ForwardCtx(m.encCtxB, w1)
	w3 := m.dec2.ForwardCtx(m.dec2CtxB, z3)

	// R₂ path (positive weight).
	_, g2 := nn.MSELoss(w2, x, m.g2)
	for i := range g2 {
		g2[i] *= wRec
	}
	gz := m.dec2.BackwardCtx(m.dec2CtxA, g2)
	m.enc.BackwardCtx(m.encCtxA, gz)

	// R_both path (negative weight: D₂ learns to amplify the error).
	_, g3 := nn.MSELoss(w3, x, m.g3)
	for i := range g3 {
		g3[i] *= -wAdv
	}
	gz3 := m.dec2.BackwardCtx(m.dec2CtxB, g3)
	m.enc.BackwardCtx(m.encCtxB, gz3) // stops here: w1 is constant

	nn.ClipGrads(m.params2, 5)
	m.opt2.Step(m.params2)
	m.dec1.ZeroGrad()
}
