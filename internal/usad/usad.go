// Package usad implements USAD (Audibert et al., KDD 2020): an adversarial
// autoencoder with one shared encoder E and two decoders D₁, D₂. Training
// alternates two objectives whose adversarial weight grows with the epoch
// counter n:
//
//	L_AE1 = (1/n)·R₁ + ((n−1)/n)·R_both   (minimized by E, D₁)
//	L_AE2 = (1/n)·R₂ − ((n−1)/n)·R_both   (minimized by E, D₂)
//
// with R_i = ‖x − AE_i(x)‖² and R_both = ‖x − AE₂(AE₁(x))‖². AE₁ learns to
// reconstruct well enough that AE₂ cannot tell its output from real data,
// while AE₂ learns to amplify reconstruction errors — which is what makes
// the two-pass reconstruction sensitive to anomalies.
//
// As in the original implementation, inputs are min-max normalized to
// [0,1] (refreshed at every Fit, so the normalization is part of θ_model)
// and, as in the reference implementation, hidden layers use ReLU with
// sigmoid decoder outputs; the bounded decoders are what
// keep the adversarial maximization of R_both from diverging.
package usad

import (
	"fmt"
	"math/rand"

	"streamad/internal/nn"
)

// Model is a USAD adversarial autoencoder over min-max normalized inputs.
type Model struct {
	enc    *nn.MLP // E:  dim → z (3 FC layers)
	dec1   *nn.MLP // D₁: z → dim (3 FC layers)
	dec2   *nn.MLP // D₂: z → dim (3 FC layers)
	opt1   nn.Optimizer
	opt2   nn.Optimizer
	scaler *nn.MinMaxScaler
	dim    int
	latent int
	epoch  int // adversarial schedule counter n
	zbuf   []float64
	// Alpha/Beta weight the two reconstruction errors in the inference
	// score ½·(α·R₁ + β·R_both); defaults 0.5/0.5.
	Alpha, Beta float64
}

// Config parameterizes USAD.
type Config struct {
	// Dim is the flattened feature-vector length N·w.
	Dim int
	// Latent is the bottleneck width Z ≪ w (default max(Dim/8, 2)).
	Latent int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives weight initialization.
	Seed int64
}

// New returns an initialized USAD model.
func New(cfg Config) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("usad: Dim must be positive, got %d", cfg.Dim)
	}
	z := cfg.Latent
	if z == 0 {
		z = cfg.Dim / 8
	}
	if z < 2 {
		z = 2
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 1e-3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.Dim
	h1, h2 := mid(d, z), mid2(d, z)
	encSizes := []int{d, h1, h2, z}
	decSizes := []int{z, h2, h1, d}
	return &Model{
		enc:    nn.NewMLP(encSizes, nn.ReLU{}, nn.ReLU{}, rng),
		dec1:   nn.NewMLP(decSizes, nn.ReLU{}, nn.Sigmoid{}, rng),
		dec2:   nn.NewMLP(decSizes, nn.ReLU{}, nn.Sigmoid{}, rng),
		opt1:   nn.NewAdam(lr),
		opt2:   nn.NewAdam(lr),
		scaler: nn.NewMinMaxScaler(d),
		dim:    d,
		latent: z,
		zbuf:   make([]float64, d),
		Alpha:  0.5,
		Beta:   0.5,
	}, nil
}

// mid and mid2 pick intermediate layer widths between dim and latent.
func mid(d, z int) int {
	m := (d + z) / 2
	if m < z {
		m = z
	}
	return m
}

func mid2(d, z int) int {
	m := (d + 3*z) / 4
	if m < z {
		m = z
	}
	return m
}

// Clone returns a deep copy of the model parameters and adversarial
// schedule. The optimizers' moment estimates are not copied: a clone is
// intended as a frozen "before fine-tuning" snapshot (Figure 1); if it is
// trained further it starts with fresh Adam state.
func (m *Model) Clone() *Model {
	return &Model{
		enc:    m.enc.Clone(),
		dec1:   m.dec1.Clone(),
		dec2:   m.dec2.Clone(),
		opt1:   nn.NewAdam(1e-3),
		opt2:   nn.NewAdam(1e-3),
		scaler: m.scaler.Clone(),
		dim:    m.dim,
		latent: m.latent,
		epoch:  m.epoch,
		zbuf:   make([]float64, m.dim),
		Alpha:  m.Alpha,
		Beta:   m.Beta,
	}
}

// Dim returns the feature-vector length.
func (m *Model) Dim() int { return m.dim }

// Latent returns the bottleneck width.
func (m *Model) Latent() int { return m.latent }

// Epoch returns the adversarial schedule counter n.
func (m *Model) Epoch() int { return m.epoch }

// ae1 computes AE₁(x) = D₁(E(x)).
func (m *Model) ae1(x []float64) []float64 {
	return m.dec1.Predict(m.enc.Predict(x))
}

// Predict implements the framework model contract: target is the feature
// vector, prediction is the USAD inference reconstruction — the blend
// α·AE₁(x) + β·AE₂(AE₁(x)) mirroring the original paper's inference score
// α·R₁ + β·R_both — mapped back to the original space. The second term is
// the adversarially amplified two-pass reconstruction that makes the error
// spike on anomalous inputs.
func (m *Model) Predict(x []float64) (target, pred []float64) {
	if len(x) != m.dim {
		panic(fmt.Sprintf("usad: expected %d values, got %d", m.dim, len(x)))
	}
	z := m.scaler.Transform(x, m.zbuf)
	w1 := m.ae1(z)
	w3 := m.dec2.Predict(m.enc.Predict(w1))
	out := make([]float64, m.dim)
	for i := range out {
		out[i] = m.Alpha*w1[i] + m.Beta*w3[i]
	}
	return x, m.scaler.Inverse(out, out)
}

// Reconstructions returns (AE₁(x), AE₂(AE₁(x))) in the original space for
// the blended inference score used by the Figure 1 experiment.
func (m *Model) Reconstructions(x []float64) (r1, rBoth []float64) {
	z := m.scaler.Transform(x, m.zbuf)
	w1 := m.ae1(z)
	w3 := m.dec2.Predict(m.enc.Predict(w1))
	return m.scaler.Inverse(w1, nil), m.scaler.Inverse(w3, nil)
}

// Fit refreshes the input scaler and runs one adversarial training epoch
// over the training set, incrementing the schedule counter n, exactly one
// optimizer step per sample per objective.
func (m *Model) Fit(set [][]float64) {
	m.scaler.Fit(set)
	m.epoch++
	n := float64(m.epoch)
	wRec := 1 / n
	wAdv := (n - 1) / n
	for _, x := range set {
		if len(x) != m.dim {
			continue
		}
		z := m.scaler.Transform(x, m.zbuf)
		m.stepAE1(z, wRec, wAdv)
		m.stepAE2(z, wRec, wAdv)
	}
}

// stepAE1 minimizes L_AE1 = wRec·R₁ + wAdv·R_both over (E, D₁). Gradients
// flow through D₂/E on the R_both path but only E and D₁ are stepped.
func (m *Model) stepAE1(x []float64, wRec, wAdv float64) {
	// Forward: z = E(x); w1 = D1(z); z3 = E(w1); w3 = D2(z3).
	z, encCtx := m.enc.Forward(x)
	w1, dec1Ctx := m.dec1.Forward(z)
	z3, encCtx3 := m.enc.Forward(w1)
	w3, dec2Ctx3 := m.dec2.Forward(z3)

	// R₁ gradient path.
	_, g1 := nn.MSELoss(w1, x, nil)
	for i := range g1 {
		g1[i] *= wRec
	}
	// R_both gradient path (through D₂ and the second E pass into w1).
	_, g3 := nn.MSELoss(w3, x, nil)
	for i := range g3 {
		g3[i] *= wAdv
	}
	gz3 := m.dec2.Backward(dec2Ctx3, g3)
	gw1FromBoth := m.enc.Backward(encCtx3, gz3)
	// Total gradient into w1 combines both paths, then flows through D₁, E.
	for i := range g1 {
		g1[i] += gw1FromBoth[i]
	}
	gz := m.dec1.Backward(dec1Ctx, g1)
	m.enc.Backward(encCtx, gz)

	// Step only E and D₁; discard gradients parked on D₂.
	params := append(m.enc.Params(), m.dec1.Params()...)
	nn.ClipGrads(params, 5)
	m.opt1.Step(params)
	m.dec2.ZeroGrad()
}

// stepAE2 minimizes L_AE2 = wRec·R₂ − wAdv·R_both over (E, D₂). AE₁ output
// is treated as a constant on the R_both path.
func (m *Model) stepAE2(x []float64, wRec, wAdv float64) {
	// Forward: z = E(x); w2 = D2(z); w1 = AE1(x) (constant); z3 = E(w1);
	// w3 = D2(z3).
	z, encCtx := m.enc.Forward(x)
	w2, dec2Ctx := m.dec2.Forward(z)
	w1 := m.ae1(x)
	z3, encCtx3 := m.enc.Forward(w1)
	w3, dec2Ctx3 := m.dec2.Forward(z3)

	// R₂ path (positive weight).
	_, g2 := nn.MSELoss(w2, x, nil)
	for i := range g2 {
		g2[i] *= wRec
	}
	gz := m.dec2.Backward(dec2Ctx, g2)
	m.enc.Backward(encCtx, gz)

	// R_both path (negative weight: D₂ learns to amplify the error).
	_, g3 := nn.MSELoss(w3, x, nil)
	for i := range g3 {
		g3[i] *= -wAdv
	}
	gz3 := m.dec2.Backward(dec2Ctx3, g3)
	m.enc.Backward(encCtx3, gz3) // stops here: w1 is constant

	params := append(m.enc.Params(), m.dec2.Params()...)
	nn.ClipGrads(params, 5)
	m.opt2.Step(params)
	m.dec1.ZeroGrad()
}
