#!/usr/bin/env bash
# soak.sh — build streamadd and streamload, soak a live server with the
# deterministic abrupt-drift scenario, and grade the run against SLOs.
#
#   scripts/soak.sh smoke   # CI gate: 64 streams, ~2s of traffic, hard
#                           # SLOs (zero 5xx, zero shed, zero errors,
#                           # p99 < 750ms); report goes to a temp dir
#   scripts/soak.sh full    # make bench-soak: 64 streams x 50 vec/s for
#                           # 30s; writes the checked-in BENCH_soak.json
#   scripts/soak.sh cascade # CI gate: the smoke soak against a server
#                           # running cascade(zscore, knn); recall must
#                           # hold the plain-knn gate and /metrics must
#                           # show every stream's admission rate < 50%
#   scripts/soak.sh shed    # CI gate: overdrive a server running the
#                           # shed overload policy with a tiny queue;
#                           # sheds must be reported inline (zero 5xx,
#                           # zero errors) and /metrics must show a
#                           # non-zero shed counter
#   scripts/soak.sh drop    # CI gate: the same overdrive against the
#                           # drop-oldest policy; drops must surface as
#                           # inline dropped results (zero 5xx, zero
#                           # errors, zero sheds) and /metrics must show
#                           # a non-zero dropped counter
#
# The server runs a real streamadd (arima, 4 channels, block overload
# policy) on a loopback port; it is killed on exit. streamload's exit
# code propagates: 0 all SLOs met, 1 SLO violation, 2 harness error.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-smoke}"
ADDR="${SOAK_ADDR:-127.0.0.1:18417}"
OUT="${SOAK_OUT:-BENCH_soak.json}"

command -v curl >/dev/null 2>&1 || { echo "soak.sh: curl is required for the readiness probe" >&2; exit 2; }

BIN="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/streamadd" ./cmd/streamadd
go build -o "$BIN/streamload" ./cmd/streamload

# Small kNN pipeline (w=8, m=32) so 64 fresh streams warm up within the
# soak's warmup window. kNN scores the current vector directly, so alerts
# line up with the generator's per-record labels (windowed models smear a
# spike across the following w scores and ruin point recall). The alert
# quantile is set against the scenario's 2% contamination; fixed seed so
# the detection section of the report is reproducible run to run. In
# cascade mode the same kNN rides behind the tier-0 zscore screen: the
# gate window and calibration are sized so screening engages inside the
# smoke soak's 240-vector budget.
SPEC_ARGS=(-model knn)
if [ "$MODE" = cascade ]; then
    SPEC_ARGS=(-spec 'cascade(zscore, knn; admit=0.1, calib=64, gatewin=32)')
elif [ "$MODE" = shed ]; then
    # A queue this small under the overdriven send rate below guarantees
    # the shed policy actually engages; the gates then prove sheds stay
    # inline 429-style results instead of surfacing as 5xx or errors.
    SPEC_ARGS=(-model knn -queue-depth 4 -overload shed)
elif [ "$MODE" = drop ]; then
    SPEC_ARGS=(-model knn -queue-depth 4 -overload drop-oldest)
fi
"$BIN/streamadd" -addr "$ADDR" -channels 4 "${SPEC_ARGS[@]}" -w 8 -m 32 -seed 1 \
    -alert-quantile 0.98 >"$BIN/streamadd.log" 2>&1 &
SRV_PID=$!

ready=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "soak.sh: streamadd exited during startup:" >&2
        cat "$BIN/streamadd.log" >&2
        exit 2
    fi
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "soak.sh: streamadd never became healthy on $ADDR" >&2
    cat "$BIN/streamadd.log" >&2
    exit 2
fi

case "$MODE" in
smoke)
    "$BIN/streamload" -addr "http://$ADDR" \
        -streams 64 -rate 200 -batch 16 -vectors 240 -warmup 64 -seed 1 \
        -slo-p99 750ms -slo-shed-rate 0 -slo-error-rate 0 -slo-5xx 0 \
        -slo-recall 0.25 \
        -out "$BIN/BENCH_soak.json"
    ;;
full)
    "$BIN/streamload" -addr "http://$ADDR" \
        -streams 64 -rate 50 -batch 16 -duration 30s -warmup 64 -seed 1 \
        -slo-p99 750ms -slo-shed-rate 0 -slo-error-rate 0 -slo-5xx 0 \
        -slo-recall 0.25 \
        -out "$OUT"
    ;;
cascade)
    "$BIN/streamload" -addr "http://$ADDR" \
        -streams 64 -rate 200 -batch 16 -vectors 240 -warmup 64 -seed 1 \
        -slo-p99 750ms -slo-shed-rate 0 -slo-error-rate 0 -slo-5xx 0 \
        -slo-recall 0.25 \
        -out "$BIN/BENCH_soak.json"
    # The soak passed its SLOs; now assert the screen actually engaged:
    # every stream must be screening with an admission rate under 50%.
    curl -fsS "http://$ADDR/metrics" | awk '
        /^streamad_cascade_admission_rate\{/ { n++; if ($2 >= 0.5) { print "soak.sh: " $0 " — admission rate >= 0.5"; bad = 1 } }
        /^streamad_cascade_screening\{/      { if ($2 != 1) { print "soak.sh: " $0 " — screening never engaged"; bad = 1 } }
        END {
            if (n == 0) { print "soak.sh: no streamad_cascade_admission_rate series in /metrics"; bad = 1 }
            exit bad
        }' >&2
    ;;
shed)
    # Overdrive: 32-record batches against a 4-deep queue force the shed
    # path on nearly every request. No recall gate — shedding on purpose
    # trims the evaluated set — but sheds must never become 5xx or
    # per-record errors, and latency must hold (shedding is cheap).
    "$BIN/streamload" -addr "http://$ADDR" \
        -streams 32 -rate 400 -batch 32 -vectors 320 -warmup 64 -seed 1 \
        -slo-p99 750ms -slo-error-rate 0 -slo-5xx 0 \
        -out "$BIN/BENCH_soak.json"
    # The SLOs passed; now assert the overload policy actually engaged.
    curl -fsS "http://$ADDR/metrics" | awk '
        /^streamad_ingest_shed_total\{/ {
            n++; if ($2 + 0 == 0) { print "soak.sh: " $0 " — shed policy never engaged"; bad = 1 }
        }
        END {
            if (n == 0) { print "soak.sh: no streamad_ingest_shed_total series in /metrics"; bad = 1 }
            exit bad
        }' >&2
    ;;
drop)
    # Overdrive against drop-oldest: the newest vector always gets in by
    # discarding the oldest queued one. Unlike shed, nothing bounces back
    # to the producer — a drop surfaces as an inline dropped result on
    # the vector that was displaced — so sheds must be exactly zero while
    # the dropped counter moves.
    "$BIN/streamload" -addr "http://$ADDR" \
        -streams 32 -rate 400 -batch 32 -vectors 320 -warmup 64 -seed 1 \
        -slo-p99 750ms -slo-shed-rate 0 -slo-error-rate 0 -slo-5xx 0 \
        -out "$BIN/BENCH_soak.json"
    # The SLOs passed; now assert the overload policy actually engaged.
    curl -fsS "http://$ADDR/metrics" | awk '
        /^streamad_ingest_dropped_total\{/ {
            n++; if ($2 + 0 == 0) { print "soak.sh: " $0 " — drop-oldest policy never engaged"; bad = 1 }
        }
        END {
            if (n == 0) { print "soak.sh: no streamad_ingest_dropped_total series in /metrics"; bad = 1 }
            exit bad
        }' >&2
    ;;
*)
    echo "usage: scripts/soak.sh [smoke|full|cascade|shed|drop]" >&2
    exit 2
    ;;
esac
