#!/usr/bin/env bash
# cluster_smoke.sh — boot a 3-node streamadd cluster, soak it through
# every node at once, SIGKILL one node mid-run, and gate on the fleet
# surviving: zero non-429 5xx responses, bounded per-record errors
# (requests aimed at the dead node fail at transport until the run
# ends — that is the client's problem, not the cluster's), and recall
# holding up on the records that were scored. After the soak the
# script scrapes a survivor's /metrics and asserts the cluster layer
# actually worked: records were forwarded between nodes, the killed
# peer is marked down, and the ring shrank to the two survivors.
#
# Used by `make cluster-smoke` (part of `make ci`). Exit 0 all gates
# met, 1 an SLO or metrics assertion failed, 2 harness error.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT1="${CLUSTER_PORT1:-18431}"
PORT2="${CLUSTER_PORT2:-18432}"
PORT3="${CLUSTER_PORT3:-18433}"
URL1="http://127.0.0.1:$PORT1"
URL2="http://127.0.0.1:$PORT2"
URL3="http://127.0.0.1:$PORT3"
PEERS="$URL1,$URL2,$URL3"

command -v curl >/dev/null 2>&1 || { echo "cluster_smoke.sh: curl is required" >&2; exit 2; }

BIN="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        if kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/streamadd" ./cmd/streamadd
go build -o "$BIN/streamload" ./cmd/streamload

# Same small kNN pipeline as soak.sh so streams warm up inside the soak
# window. Every node gets its own state dir — the WAL feeds both live
# migration and the warm standby tails — and aggressive cluster timers
# so failure detection, rebalancing, and standby sync all happen well
# inside the few seconds the smoke runs. -snapshot-entries 64 keeps WAL
# tails short without rotating so fast that standbys thrash on resyncs.
boot_node() { # boot_node <n> <port>
    local n="$1" port="$2"
    mkdir -p "$BIN/state$n"
    "$BIN/streamadd" -addr "127.0.0.1:$port" -channels 4 -model knn -w 8 -m 32 -seed 1 \
        -alert-quantile 0.98 \
        -state-dir "$BIN/state$n" -snapshot-entries 64 \
        -cluster-peers "$PEERS" -cluster-self "http://127.0.0.1:$port" \
        -cluster-probe-interval 250ms -cluster-probe-failures 2 \
        -cluster-rebalance-interval 500ms -cluster-standby-interval 300ms \
        >"$BIN/streamadd$n.log" 2>&1 &
    PIDS+=($!)
}
boot_node 1 "$PORT1"
boot_node 2 "$PORT2"
boot_node 3 "$PORT3"
VICTIM_PID="${PIDS[2]}"

for i in 1 2 3; do
    url_var="URL$i"
    ready=""
    for _ in $(seq 1 100); do
        if curl -fsS "${!url_var}/healthz" >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.1
    done
    if [ -z "$ready" ]; then
        echo "cluster_smoke.sh: node $i never became healthy:" >&2
        cat "$BIN/streamadd$i.log" >&2
        exit 2
    fi
done

# SIGKILL (not SIGTERM — no graceful drain, no final checkpoint) the
# third node partway through the soak, while traffic is flowing.
(sleep 2.5 && kill -9 "$VICTIM_PID" 2>/dev/null) &
KILLER_PID=$!

# Multi-target streamload round-robins every request across all three
# nodes, so roughly 2/3 of records arrive at a non-owner and exercise
# the forwarding proxy. Gates: zero non-429 5xx — a dead peer must
# degrade to inline per-record errors, never to a survivor 5xx; the
# error budget covers both the requests aimed straight at the dead
# node for the back half of the run (~1/3 x ~1/2) and the forwards
# that fail during the detection window before the ring drops it; and
# recall over the records that were scored must hold a floor (killed-
# node streams fail over to their standbys and keep alerting).
rc=0
"$BIN/streamload" -addr "$URL1,$URL2,$URL3" \
    -streams 48 -rate 100 -batch 8 -vectors 600 -warmup 64 -seed 1 \
    -slo-p99 2s -slo-error-rate 0.35 -slo-5xx 0 -slo-recall 0.15 \
    -out "$BIN/BENCH_cluster_smoke.json" || rc=$?
wait "$KILLER_PID" 2>/dev/null || true
if [ "$rc" -ne 0 ]; then
    echo "cluster_smoke.sh: streamload failed (exit $rc); node logs follow" >&2
    tail -n 40 "$BIN"/streamadd*.log >&2
    exit "$rc"
fi

# The soak passed; now prove the cluster layer did the work. Node 1 is
# a survivor: it must have forwarded records to peers, observed the
# killed node go down, and shrunk its ring to the two survivors.
curl -fsS "$URL1/metrics" | awk -v dead="$URL3" '
    /^streamad_cluster_forwarded_records_total\{/ { fwd += $2 }
    /^streamad_cluster_node_up\{/ {
        if (index($0, "\"" dead "\"") && $2 != 0) { print "cluster_smoke.sh: " $0 " — killed peer still marked up"; bad = 1 }
    }
    /^streamad_cluster_ring_nodes / {
        ring = $2
        if ($2 != 2) { print "cluster_smoke.sh: " $0 " — ring should hold the 2 survivors"; bad = 1 }
    }
    END {
        if (fwd == 0) { print "cluster_smoke.sh: no records were forwarded between nodes"; bad = 1 }
        if (ring == "") { print "cluster_smoke.sh: no streamad_cluster_ring_nodes sample"; bad = 1 }
        exit bad
    }' >&2 || {
    echo "cluster_smoke.sh: metrics assertions failed; node 1 log follows" >&2
    tail -n 40 "$BIN/streamadd1.log" >&2
    exit 1
}

echo "cluster_smoke.sh: 3-node soak survived a SIGKILL mid-run (report: BENCH_cluster_smoke.json in temp dir)"
