#!/usr/bin/env bash
# scale_smoke.sh — boot a live streamadd with the hot/warm/cold residency
# ladder enabled, register a 2k-stream fleet, then drive only a 1% hot
# subset and prove residency collapses to the working set:
#
#   - both load phases must pass zero-5xx / zero-error SLOs (sheds are
#     429-style and the block policy makes them impossible here);
#   - after the hot phase, /metrics must show resident (hot+warm)
#     streams at or below CEILING while the idle fleet sits cold;
#   - the tier gauge families must actually be exported.
#
# The server runs on a loopback port with a temp state dir; both are
# removed on exit. Exit 0 all gates met, 1 gate violation, 2 harness
# error.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${SCALE_ADDR:-127.0.0.1:18423}"
FLEET="${SCALE_FLEET:-2000}"
HOT="${SCALE_HOT:-20}"
CEILING="${SCALE_CEILING:-200}"

command -v curl >/dev/null 2>&1 || { echo "scale_smoke.sh: curl is required" >&2; exit 2; }

BIN="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/streamadd" ./cmd/streamadd
go build -o "$BIN/streamload" ./cmd/streamload

# Small kNN pipeline so 2k fresh streams register quickly. The ladder is
# tuned for the smoke's timescale: idle 500ms pages a stream's window
# state out (warm), idle 3s checkpoints and unloads it entirely (cold).
# -max-streams must clear the whole fleet: this smoke proves residency
# falls because of tiering, not because admission capped it.
"$BIN/streamadd" -addr "$ADDR" -channels 4 -model knn -w 8 -m 32 -seed 1 \
    -state-dir "$BIN/state" -shards 64 -max-streams $((FLEET + 100)) \
    -tier-warm-after 500ms -stream-ttl 3s \
    >"$BIN/streamadd.log" 2>&1 &
SRV_PID=$!

ready=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "scale_smoke.sh: streamadd exited during startup:" >&2
        cat "$BIN/streamadd.log" >&2
        exit 2
    fi
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "scale_smoke.sh: streamadd never became healthy on $ADDR" >&2
    cat "$BIN/streamadd.log" >&2
    exit 2
fi

# Phase 1: register the fleet — two vectors per stream, every stream
# lands resident. streamload names streams soak-0..soak-N, so the hot
# subset below is a strict subset of this fleet.
"$BIN/streamload" -addr "http://$ADDR" \
    -streams "$FLEET" -vectors 2 -rate 100 -batch 32 -warmup 1 -seed 1 \
    -slo-error-rate 0 -slo-5xx 0 \
    -out "$BIN/register.json"

# Phase 2: steady state — only the hot subset sees traffic, long enough
# for the idle fleet to age past warm-after and then the TTL.
"$BIN/streamload" -addr "http://$ADDR" \
    -streams "$HOT" -vectors 400 -rate 100 -batch 16 -warmup 64 -seed 1 \
    -slo-error-rate 0 -slo-5xx 0 \
    -out "$BIN/steady.json"

# Gate: poll /metrics until resident (hot+warm) streams fall to the
# ceiling. Demotion and eviction are background sweeps, so give them a
# bounded settle window; residency only shrinks once traffic stops.
deadline=$((SECONDS + 30))
while :; do
    if curl -fsS "http://$ADDR/metrics" | awk -v ceiling="$CEILING" '
        /^streamad_tier_streams\{tier="hot"\}/  { hot = $2; seen++ }
        /^streamad_tier_streams\{tier="warm"\}/ { warm = $2; seen++ }
        /^streamad_tier_streams\{tier="cold"\}/ { cold = $2; seen++ }
        END {
            if (seen != 3) { print "scale_smoke.sh: streamad_tier_streams families missing from /metrics" > "/dev/stderr"; exit 2 }
            resident = hot + warm
            printf "scale_smoke.sh: resident=%d (hot=%d warm=%d) cold=%d ceiling=%d\n", resident, hot, warm, cold, ceiling > "/dev/stderr"
            exit resident <= ceiling ? 0 : 1
        }'; then
        break
    fi
    if [ "$SECONDS" -ge "$deadline" ]; then
        echo "scale_smoke.sh: resident streams never fell to the ceiling ($CEILING) within the settle window" >&2
        exit 1
    fi
    sleep 1
done

echo "scale_smoke.sh: PASS — $FLEET registered, $HOT hot, resident held under $CEILING with zero non-429 5xx" >&2
