package streamad

import (
	"testing"

	"streamad/internal/dataset"
)

// TestModelCheckpointRoundTrip trains each model kind briefly, snapshots
// it, restores the snapshot into a freshly built detector and verifies
// both produce identical scores on the same evaluation stream.
func TestModelCheckpointRoundTrip(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 700, SeriesCount: 1, Seed: 13})
	s := corpus.Series[0]
	mk := func() Config {
		return Config{
			Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskRegular,
			// TaskRegular with a huge interval: no fine-tunes after warmup,
			// so the restored model's scores must match exactly.
			RegularInterval: 1 << 30,
			Score:           ScoreAverage,
			Channels:        s.Channels(), Window: 12, TrainSize: 60,
			WarmupVectors: 80, Seed: 5,
		}
	}
	kinds := []ModelKind{ModelARIMA, ModelARIMAONS, ModelPCBIForest, ModelAE, ModelUSAD, ModelNBEATS, ModelVAR, ModelKNN}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := mk()
			cfg.Model = kind
			trained, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up (train) on the first part of the stream.
			for _, row := range s.Data[:300] {
				trained.Step(row)
			}
			if !trained.WarmedUp() {
				t.Fatal("detector did not warm up")
			}
			snap, err := trained.SaveModel()
			if err != nil {
				t.Fatalf("SaveModel: %v", err)
			}
			if len(snap) == 0 {
				t.Fatal("empty snapshot")
			}

			// The restored detector must skip its own initial fit (the
			// model comes from the snapshot) but still refill its window
			// and training set from the live stream.
			cfg.PreTrained = true
			restored, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.LoadModel(snap); err != nil {
				t.Fatalf("LoadModel: %v", err)
			}

			// Drive both detectors through an identical evaluation slice.
			// The restored one becomes ready after its window + warmup
			// refill; from then on the (frozen, identical) models must
			// produce identical nonconformity scores.
			compared := 0
			for i := 300; i < 650; i++ {
				a, okA := trained.Step(s.Data[i])
				b, okB := restored.Step(s.Data[i])
				if !okA || !okB {
					continue
				}
				compared++
				if a.Nonconformity != b.Nonconformity {
					t.Fatalf("nonconformity diverged at %d: %v vs %v", i, a.Nonconformity, b.Nonconformity)
				}
			}
			if compared < 100 {
				t.Fatalf("only %d comparable steps; restored detector never became ready", compared)
			}
		})
	}
}

// TestLoadModelRejectsMismatchedShape verifies a snapshot cannot be
// loaded into a differently-shaped detector.
func TestLoadModelRejectsMismatchedShape(t *testing.T) {
	a, err := New(Config{Model: ModelAE, Channels: 3, Window: 8, TrainSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := a.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Model: ModelAE, Channels: 4, Window: 8, TrainSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadModel(snap); err == nil {
		t.Fatal("mismatched-shape load must fail")
	}
	c, err := New(Config{Model: ModelUSAD, Channels: 3, Window: 8, TrainSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadModel(snap); err == nil {
		t.Fatal("cross-model load must fail")
	}
}
