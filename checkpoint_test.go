package streamad

import (
	"testing"

	"streamad/internal/dataset"
)

// TestModelCheckpointRoundTrip trains each model kind briefly, snapshots
// it, restores the snapshot into a freshly built detector and verifies
// both produce identical scores on the same evaluation stream.
func TestModelCheckpointRoundTrip(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 700, SeriesCount: 1, Seed: 13})
	s := corpus.Series[0]
	mk := func() Config {
		return Config{
			Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskRegular,
			// TaskRegular with a huge interval: no fine-tunes after warmup,
			// so the restored model's scores must match exactly.
			RegularInterval: 1 << 30,
			Score:           ScoreAverage,
			Channels:        s.Channels(), Window: 12, TrainSize: 60,
			WarmupVectors: 80, Seed: 5,
		}
	}
	kinds := []ModelKind{ModelARIMA, ModelARIMAONS, ModelPCBIForest, ModelAE, ModelUSAD, ModelNBEATS, ModelVAR, ModelKNN}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := mk()
			cfg.Model = kind
			trained, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up (train) on the first part of the stream.
			for _, row := range s.Data[:300] {
				trained.Step(row)
			}
			if !trained.WarmedUp() {
				t.Fatal("detector did not warm up")
			}
			snap, err := trained.SaveModel()
			if err != nil {
				t.Fatalf("SaveModel: %v", err)
			}
			if len(snap) == 0 {
				t.Fatal("empty snapshot")
			}

			// The restored detector must skip its own initial fit (the
			// model comes from the snapshot) but still refill its window
			// and training set from the live stream.
			cfg.PreTrained = true
			restored, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.LoadModel(snap); err != nil {
				t.Fatalf("LoadModel: %v", err)
			}

			// Drive both detectors through an identical evaluation slice.
			// The restored one becomes ready after its window + warmup
			// refill; from then on the (frozen, identical) models must
			// produce identical nonconformity scores.
			compared := 0
			for i := 300; i < 650; i++ {
				a, okA := trained.Step(s.Data[i])
				b, okB := restored.Step(s.Data[i])
				if !okA || !okB {
					continue
				}
				compared++
				if a.Nonconformity != b.Nonconformity {
					t.Fatalf("nonconformity diverged at %d: %v vs %v", i, a.Nonconformity, b.Nonconformity)
				}
			}
			if compared < 100 {
				t.Fatalf("only %d comparable steps; restored detector never became ready", compared)
			}
		})
	}
}

// TestLoadModelRejectsMismatchedShape verifies a snapshot cannot be
// loaded into a differently-shaped detector.
func TestLoadModelRejectsMismatchedShape(t *testing.T) {
	a, err := New(Config{Model: ModelAE, Channels: 3, Window: 8, TrainSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := a.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Model: ModelAE, Channels: 4, Window: 8, TrainSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadModel(snap); err == nil {
		t.Fatal("mismatched-shape load must fail")
	}
	c, err := New(Config{Model: ModelUSAD, Channels: 3, Window: 8, TrainSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadModel(snap); err == nil {
		t.Fatal("cross-model load must fail")
	}
}

// TestDetectorSaveLoadRoundTrip is the full-detector counterpart of the
// model round-trip above, and a strictly stronger guarantee: Save/Load
// captures the window, training set, drift reference, scorer and RNG
// position, so the restored detector needs no refill and must emit scores
// identical to the uninterrupted run from the very next vector — even
// though fine-tunes keep firing (small Regular interval) and the ARES
// training set keeps drawing from the checkpointed RNG.
func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 700, SeriesCount: 1, Seed: 13})
	s := corpus.Series[0]
	kinds := []ModelKind{ModelARIMA, ModelARIMAONS, ModelPCBIForest, ModelAE, ModelUSAD, ModelNBEATS, ModelVAR, ModelKNN}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{
				Model: kind, Task1: TaskAnomalyReservoir, Task2: TaskRegular,
				RegularInterval: 100, // fine-tunes keep happening after restore
				Score:           ScoreLikelihood,
				Channels:        s.Channels(), Window: 12, TrainSize: 60,
				WarmupVectors: 80, Seed: 5,
			}
			if kind == ModelVAR {
				cfg.Task1 = TaskSlidingWindow // VAR requires ordered training rows
			}
			live, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range s.Data[:300] {
				live.Step(row)
			}
			snap, err := live.Save()
			if err != nil {
				t.Fatalf("Save: %v", err)
			}

			restored, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Load(snap); err != nil {
				t.Fatalf("Load: %v", err)
			}
			if restored.Steps() != live.Steps() {
				t.Fatalf("restored steps %d, live steps %d", restored.Steps(), live.Steps())
			}

			tunesAtSave := live.FineTunes()
			for i := 300; i < 650; i++ {
				a, okA := live.Step(s.Data[i])
				b, okB := restored.Step(s.Data[i])
				if okA != okB {
					t.Fatalf("readiness diverged at %d: %v vs %v", i, okA, okB)
				}
				if !okA {
					continue
				}
				if a.Score != b.Score || a.Nonconformity != b.Nonconformity || a.FineTuned != b.FineTuned {
					t.Fatalf("diverged at step %d: live (s=%v n=%v ft=%v) restored (s=%v n=%v ft=%v)",
						i, a.Score, a.Nonconformity, a.FineTuned, b.Score, b.Nonconformity, b.FineTuned)
				}
			}
			if live.FineTunes() == tunesAtSave {
				t.Fatal("evaluation slice triggered no fine-tunes; the test is too weak")
			}
			if live.FineTunes() != restored.FineTunes() {
				t.Fatalf("fine-tune counts diverged: %d vs %d", live.FineTunes(), restored.FineTunes())
			}
		})
	}
}

// TestDetectorLoadRejectsMismatch verifies configuration fingerprinting
// and corruption handling on the full-detector snapshot.
func TestDetectorLoadRejectsMismatch(t *testing.T) {
	base := Config{Model: ModelKNN, Channels: 3, Window: 8, TrainSize: 20, WarmupVectors: 10, Seed: 1}
	a, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := a.Save()
	if err != nil {
		t.Fatal(err)
	}

	other := base
	other.Seed = 2
	b, _ := New(other)
	if err := b.Load(snap); err == nil {
		t.Fatal("snapshot with different seed must be rejected")
	}
	other = base
	other.Model = ModelAE
	c, _ := New(other)
	if err := c.Load(snap); err == nil {
		t.Fatal("snapshot for a different model must be rejected")
	}

	d, _ := New(base)
	if err := d.Load(snap[:len(snap)/2]); err == nil {
		t.Fatal("truncated snapshot must be rejected")
	}
	garbage := append([]byte(nil), snap...)
	for i := range garbage {
		garbage[i] ^= 0xA5
	}
	if err := d.Load(garbage); err == nil {
		t.Fatal("corrupt snapshot must be rejected")
	}
}
