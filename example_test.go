package streamad_test

import (
	"fmt"
	"math"

	"streamad"
)

// ExampleNew assembles the paper's USAD + sliding-window + μ/σ-Change +
// anomaly-likelihood detector and streams a synthetic signal with one
// injected anomaly through it.
func ExampleNew() {
	det, err := streamad.New(streamad.Config{
		Model:         streamad.ModelUSAD,
		Task1:         streamad.TaskSlidingWindow,
		Task2:         streamad.TaskMuSigma,
		Score:         streamad.ScoreLikelihood,
		Channels:      2,
		Window:        8,
		TrainSize:     50,
		WarmupVectors: 80,
		ScoreWindow:   60,
		ShortWindow:   4,
		Seed:          1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	firstAlert := -1
	for t := 0; t < 400; t++ {
		v := math.Sin(0.2 * float64(t))
		s := []float64{2 + v, 3 - v}
		if t >= 300 && t < 310 {
			s[0] += 5 // the anomaly
			s[1] -= 5
		}
		res, ok := det.Step(s)
		if ok && res.Score > 0.999 && firstAlert < 0 {
			firstAlert = t
		}
	}
	fmt.Println("anomaly injected at t=300, first alert in window:", firstAlert >= 300 && firstAlert < 315)
	// Output:
	// anomaly injected at t=300, first alert in window: true
}

// ExampleCombos enumerates the paper's Table I grid.
func ExampleCombos() {
	combos := streamad.Combos()
	fmt.Println("combinations:", len(combos))
	fmt.Println("first:", combos[0])
	fmt.Println("last:", combos[len(combos)-1])
	// Output:
	// combinations: 26
	// first: Online ARIMA/SW/μ/σ
	// last: PCB-iForest/ARES/KS
}

// ExampleParseModelKind shows the CLI-style string parsing helpers.
func ExampleParseModelKind() {
	mk, _ := streamad.ParseModelKind("nbeats")
	t1, _ := streamad.ParseTask1("ares")
	t2, _ := streamad.ParseTask2("kswin")
	sk, _ := streamad.ParseScoreKind("al")
	fmt.Println(mk, t1, t2, sk)
	// Output:
	// N-BEATS ARES KS AL
}
