package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles streamadlint into a temp dir and returns the
// binary path. Every protocol test drives the real binary: the vet
// handshake happens over argv/stdout, not an importable API.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "streamadlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building streamadlint: %v\n%s", err, out)
	}
	return bin
}

// writeProbeModule lays out a module whose only finding requires a
// cross-package fact: the allocating helper lives in its own package,
// and the hotpath kernel in the root package calls it. A suppressed
// lazy-init sits alongside for the audit view.
func writeProbeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module vetprobe\n\ngo 1.24\n",
		"helper/helper.go": `// Package helper allocates on behalf of the probe kernel.
package helper

// Grow allocates: append may grow the backing array.
func Grow(xs []float64, v float64) []float64 {
	return append(xs, v)
}
`,
		"probe.go": `// Package vetprobe exercises the vet driver end to end.
package vetprobe

import "vetprobe/helper"

var sink []float64

//streamad:hotpath
func Kernel(xs []float64) {
	sink = helper.Grow(xs, 1)
}

//streamad:hotpath
func Lazy(n int) []float64 {
	//streamad:ignore hotalloc one-time lazy init for the probe
	return make([]float64, n)
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestVersionHandshake pins the -V=full exchange: the go command hashes
// the "name version id" line into its cache key, so the format and the
// version constant are load-bearing.
func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	for _, arg := range []string{"-V=full", "-V"} {
		out, err := exec.Command(bin, arg).Output()
		if err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		want := "streamadlint version " + version + "\n"
		if string(out) != want {
			t.Errorf("%s: got %q, want %q", arg, out, want)
		}
	}
}

// TestFlagsQuery pins the -flags capability answer the go command
// parses before passing flags through to unit invocations.
func TestFlagsQuery(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatal(err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not the expected JSON: %v\n%s", err, out)
	}
	byName := make(map[string]bool)
	for _, f := range flags {
		if f.Usage == "" {
			t.Errorf("flag %q has no usage text", f.Name)
		}
		byName[f.Name] = f.Bool
	}
	if isBool, ok := byName["analyzers"]; !ok || isBool {
		t.Errorf("analyzers flag: ok=%v bool=%v, want declared non-bool", ok, isBool)
	}
	if isBool, ok := byName["list"]; !ok || !isBool {
		t.Errorf("list flag: ok=%v bool=%v, want declared bool", ok, isBool)
	}
}

// TestUnitCfgErrors pins the .cfg entry point: a config argument is
// recognized by suffix, and a malformed one fails the unit rather than
// silently passing it.
func TestUnitCfgErrors(t *testing.T) {
	bin := buildTool(t)
	cfg := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(cfg, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd := exec.Command(bin, cfg)
	cmd.Stderr = &stderr
	err := cmd.Run()
	var exit *exec.ExitError
	if err == nil {
		t.Fatal("malformed .cfg accepted")
	}
	if !errorsAs(err, &exit) || exit.ExitCode() != 1 {
		t.Fatalf("malformed .cfg: got %v, want exit 1", err)
	}
	if !strings.Contains(stderr.String(), "parsing") {
		t.Errorf("stderr %q does not mention the parse failure", stderr.String())
	}
}

func errorsAs(err error, target **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*target = e
	}
	return ok
}

// TestGoVetEndToEnd drives the full protocol through the real go
// command. The probe module's only finding needs the vetx fact
// round-trip to exist: helper's AllocFact is computed in one process,
// serialized to the helper unit's vetx file, and decoded by the root
// unit's process — if any leg of the plumbing breaks, the diagnostic
// disappears and this test fails.
func TestGoVetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets a module with the real toolchain; skipped in -short mode")
	}
	bin := buildTool(t)
	mod := writeProbeModule(t)

	var stderr bytes.Buffer
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet passed; want the cross-package hotalloc finding\nstderr:\n%s", stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "call to helper.Grow allocates on a hot path") {
		t.Errorf("missing the transitive finding; stderr:\n%s", out)
	}
	if !strings.Contains(out, "append at ") {
		t.Errorf("finding does not carry the allocation chain; stderr:\n%s", out)
	}
	if strings.Contains(out, "Lazy") {
		t.Errorf("suppressed lazy-init construct was reported; stderr:\n%s", out)
	}
}

// pinnedReport mirrors the -json schema with unknown fields disallowed:
// a field added, renamed or removed in the output breaks this test, by
// design — downstream tooling parses this document.
type pinnedReport struct {
	Version     string             `json:"version"`
	Packages    int                `json:"packages"`
	Diagnostics []pinnedDiagnostic `json:"diagnostics"`
	TimingMs    map[string]float64 `json:"timing_ms"`
}

type pinnedDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason"`
}

// TestJSONSchema pins the -json document: field set, version constant,
// suppressed diagnostics included with their reasons, per-analyzer
// timing present, and the exit status driven by unsuppressed findings
// only.
func TestJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks a probe module; skipped in -short mode")
	}
	bin := buildTool(t)
	mod := writeProbeModule(t)

	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-json", mod)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	var exit *exec.ExitError
	if !errorsAs(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("got %v (stderr %q), want exit 2 for the probe's finding", err, stderr.String())
	}

	dec := json.NewDecoder(&stdout)
	dec.DisallowUnknownFields()
	var report pinnedReport
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("-json output does not match the pinned schema: %v", err)
	}
	if report.Version != version {
		t.Errorf("version = %q, want %q", report.Version, version)
	}
	if report.Packages != 2 {
		t.Errorf("packages = %d, want 2", report.Packages)
	}
	var kernel, lazy *pinnedDiagnostic
	for i := range report.Diagnostics {
		d := &report.Diagnostics[i]
		if d.Analyzer != "hotalloc" {
			t.Errorf("unexpected %s diagnostic: %s", d.Analyzer, d.Message)
			continue
		}
		switch {
		case strings.Contains(d.Message, "helper.Grow"):
			kernel = d
		case strings.Contains(d.Message, "make allocates"):
			lazy = d
		}
	}
	if kernel == nil {
		t.Fatalf("missing the cross-package finding; got %+v", report.Diagnostics)
	}
	if kernel.Suppressed || kernel.Reason != "" {
		t.Errorf("live finding marked suppressed: %+v", kernel)
	}
	if kernel.File != "probe.go" || kernel.Line == 0 || kernel.Column == 0 {
		t.Errorf("finding not positioned relative to the module root: %+v", kernel)
	}
	if lazy == nil {
		t.Fatal("suppressed lazy-init diagnostic missing from the audit view")
	}
	if !lazy.Suppressed || !strings.Contains(lazy.Reason, "one-time lazy init") {
		t.Errorf("suppressed diagnostic lost its directive reason: %+v", lazy)
	}
	if _, ok := report.TimingMs["load"]; !ok {
		t.Errorf("timing_ms has no load entry: %v", report.TimingMs)
	}
	if _, ok := report.TimingMs["hotalloc"]; !ok {
		t.Errorf("timing_ms has no hotalloc entry: %v", report.TimingMs)
	}
}
