// Command streamadlint runs the repo's custom analyzer suite
// (internal/lint) in two modes:
//
// Standalone, over the whole module:
//
//	streamadlint [-analyzers hotalloc,detrand] [dir]
//
// dir defaults to the current directory; streamadlint ascends to the
// enclosing go.mod and checks every package in the module. Exit status
// is 2 when any diagnostic is reported.
//
// As a vet tool, per compilation unit:
//
//	go vet -vettool=$(which streamadlint) ./...
//
// In this mode the go command drives streamadlint through the vet
// protocol: a -V=full version handshake, a -flags capability query, and
// then one invocation per package with a JSON config file argument
// naming the sources and the export data of every dependency.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"streamad/internal/lint"
)

// version participates in the go command's tool-ID handshake (-V=full);
// bump it when analyzer behaviour changes so cached vet results are
// invalidated.
const version = "streamad-lint-1"

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// The go command probes the tool before using it: -V=full must print
	// a "name version id" line, -flags a JSON description of the flags
	// the tool accepts (both documented in cmd/go/internal/vet).
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("%s version %s\n", progname, version)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println(`[{"Name":"analyzers","Bool":false,"Usage":"comma-separated subset of analyzers to run (default: all)"},{"Name":"list","Bool":true,"Usage":"list the analyzer catalogue and exit"}]`)
		return
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	analyzersFlag := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	listFlag := fs.Bool("list", false, "list the analyzer catalogue and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzers names] [-list] [dir | unit.cfg]\n", progname)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*analyzersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitCheck(rest[0], selected))
	}
	dir := "."
	if len(rest) > 0 {
		dir = rest[0]
	}
	os.Exit(standalone(dir, selected))
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	if names == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standalone checks every package of the module enclosing dir.
func standalone(dir string, analyzers []*lint.Analyzer) int {
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	module, err := lint.ModulePath(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	loader := lint.NewLoader(root, module)
	paths, err := loader.ModulePackages()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("streamadlint: no go.mod found above %s", abs)
		}
		d = parent
	}
}
