// Command streamadlint runs the repo's custom analyzer suite
// (internal/lint) in two modes:
//
// Standalone, over the whole module:
//
//	streamadlint [-analyzers hotalloc,detrand] [-json] [-timing] [dir]
//
// dir defaults to the current directory; streamadlint ascends to the
// enclosing go.mod and checks every package in the module in dependency
// order, threading cross-package facts. Exit status is 2 when any
// unsuppressed diagnostic is reported. -json switches the report to a
// machine-readable document on stdout that includes suppressed
// diagnostics with their justifications (the suppression-audit view);
// -timing appends the per-analyzer cost breakdown.
//
// As a vet tool, per compilation unit:
//
//	go vet -vettool=$(which streamadlint) ./...
//
// In this mode the go command drives streamadlint through the vet
// protocol: a -V=full version handshake, a -flags capability query, and
// then one invocation per package with a JSON config file argument
// naming the sources, the export data of every dependency, and the
// facts files (vetx) of the direct imports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"streamad/internal/lint"
)

// version participates in the go command's tool-ID handshake (-V=full);
// bump it when analyzer behaviour changes so cached vet results are
// invalidated. lint-2: fact layer, statesync, metriclint, directive,
// transitive hotalloc.
const version = "streamad-lint-2"

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// The go command probes the tool before using it: -V=full must print
	// a "name version id" line, -flags a JSON description of the flags
	// the tool accepts (both documented in cmd/go/internal/vet).
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("%s version %s\n", progname, version)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println(`[{"Name":"analyzers","Bool":false,"Usage":"comma-separated subset of analyzers to run (default: all)"},{"Name":"list","Bool":true,"Usage":"list the analyzer catalogue and exit"}]`)
		return
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	analyzersFlag := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	listFlag := fs.Bool("list", false, "list the analyzer catalogue and exit")
	jsonFlag := fs.Bool("json", false, "standalone mode: report as JSON on stdout, suppressed diagnostics included")
	timingFlag := fs.Bool("timing", false, "standalone mode: report per-analyzer timing")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzers names] [-list] [-json] [-timing] [dir | unit.cfg]\n", progname)
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*analyzersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitCheck(rest[0], selected))
	}
	dir := "."
	if len(rest) > 0 {
		dir = rest[0]
	}
	os.Exit(standalone(dir, selected, *jsonFlag, *timingFlag))
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	if names == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonDiagnostic is one diagnostic in -json output. The schema is
// pinned by TestJSONSchema; extend it, don't rearrange it.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the -json document.
//
//streamad:finite-json — TimingMs values derive from time.Duration microsecond counts, finite by construction.
type jsonReport struct {
	Version     string           `json:"version"`
	Packages    int              `json:"packages"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	// TimingMs has one entry per analyzer plus "load" (parse and
	// typecheck, shared by all analyzers). Always present so consumers
	// need no fallback path.
	TimingMs map[string]float64 `json:"timing_ms"`
}

// standalone checks every package of the module enclosing dir with one
// shared fact set, in dependency order.
func standalone(dir string, analyzers []*lint.Analyzer, asJSON, timing bool) int {
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	module, err := lint.ModulePath(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	loader := lint.NewLoader(root, module)
	paths, err := loader.ModulePackages()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res, err := lint.RunModule(loader, paths, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if asJSON {
		report := jsonReport{
			Version:     version,
			Packages:    res.Packages,
			Diagnostics: []jsonDiagnostic{},
			TimingMs:    timingMs(res),
		}
		for _, d := range res.Diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File:       relTo(root, d.Pos.Filename),
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.Reason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if res.Unsuppressed() > 0 {
			return 2
		}
		return 0
	}

	exit := 0
	for _, d := range res.Diags {
		if d.Suppressed {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		exit = 2
	}
	if timing {
		printTiming(res)
	}
	return exit
}

// timingMs flattens a ModuleResult's timing for the JSON report.
func timingMs(res *lint.ModuleResult) map[string]float64 {
	out := map[string]float64{"load": roundMs(res.LoadTime)}
	for name, d := range res.Timing {
		out[name] = roundMs(d)
	}
	return out
}

func roundMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func printTiming(res *lint.ModuleResult) {
	fmt.Fprintf(os.Stderr, "%-16s %10.1fms  (parse + typecheck, %d packages)\n", "load", roundMs(res.LoadTime), res.Packages)
	for _, a := range lint.All() {
		if d, ok := res.Timing[a.Name]; ok {
			fmt.Fprintf(os.Stderr, "%-16s %10.1fms\n", a.Name, roundMs(d))
		}
	}
}

// relTo renders path relative to root when possible; diagnostics stay
// stable across checkouts that way.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("streamadlint: no go.mod found above %s", abs)
		}
		d = parent
	}
}
