package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"streamad/internal/lint"
)

// vetConfig mirrors the JSON the go command writes for each vet unit
// (cmd/go/internal/work.vetConfig). Only the fields streamadlint needs
// are declared.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	// ModulePath is the module the unit belongs to; empty for the
	// standard library. It is the analyze/skip pivot: only module-local
	// units are checked, everything else just satisfies the protocol.
	ModulePath string

	ImportMap   map[string]string
	PackageFile map[string]string
	// PackageVetx maps each direct import to the facts file its own vet
	// invocation produced; VetxOutput is where this unit's facts go.
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one compilation unit described by a vet .cfg file.
// Facts flow both ways: the vetx files of the unit's direct imports are
// merged into the fact set before analysis, and the full set known
// afterwards — inherited facts included, so transitivity survives the
// per-process protocol — is written to VetxOutput for dependent units.
// Diagnostics go to stderr; the exit status is 2 when any are reported,
// matching the vet tool convention.
func unitCheck(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "streamadlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Non-module units — the standard library, vendored third-party code
	// if it ever appears — are outside the suite's invariants: emit an
	// empty facts file to satisfy the protocol and move on. Module facts
	// never travel through a stdlib package (stdlib cannot import the
	// module), so nothing is lost by not passing inherited facts along.
	// fmt and errors, the stdlib packages hotalloc cares about, are
	// special-cased inside the analyzer instead of analyzed here.
	if cfg.ModulePath == "" {
		if err := writeVetx(cfg.VetxOutput, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	fs := lint.NewFactSet()
	for _, vetxPath := range cfg.PackageVetx {
		facts, err := os.ReadFile(vetxPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamadlint: reading facts %s: %v\n", vetxPath, err)
			return 1
		}
		if err := fs.Decode(facts, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "streamadlint: %v\n", err)
			return 1
		}
	}

	// Test files are exempt from the suite, matching the standalone
	// loader: the invariants guard the shipped serving paths, and tests
	// legitimately allocate, seed raw sources and launch goroutines.
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				_ = writeVetx(cfg.VetxOutput, nil)
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// An external test package's unit is all _test.go files; it has
		// no shipped code to check and exports no facts.
		if err := writeVetx(cfg.VetxOutput, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	// Dependencies are typechecked from the export data the go command
	// already built: ImportMap canonicalizes source import paths, and
	// PackageFile locates each canonical path's archive.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	pkg := lint.NewPackage(cfg.ImportPath, cfg.Dir, fset, files, tpkg, info)
	diags, err := lint.RunPackageFacts(pkg, analyzers, fs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// The facts file is written even on a failing unit: the go command
	// caches it as this unit's output either way.
	encoded, err := fs.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput, encoded); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	reported := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		reported++
	}
	if reported > 0 {
		return 2
	}
	return 0
}

func writeVetx(path string, data []byte) error {
	if path == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
