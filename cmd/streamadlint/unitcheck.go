package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"streamad/internal/lint"
)

// vetConfig mirrors the JSON the go command writes for each vet unit
// (cmd/go/internal/work.vetConfig). Only the fields streamadlint needs
// are declared.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one compilation unit described by a vet .cfg file.
// Diagnostics go to stderr; the exit status is 2 when any are reported,
// matching the vet tool convention.
func unitCheck(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "streamadlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The analyzers are factless, so dependency passes have nothing to
	// compute; the facts file is written empty either way because the go
	// command caches it as this unit's output.
	writeVetx(cfg.VetxOutput)
	if cfg.VetxOnly {
		return 0
	}

	// Test files are exempt from the suite, matching the standalone
	// loader: the invariants guard the shipped serving paths, and tests
	// legitimately allocate, seed raw sources and launch goroutines.
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies are typechecked from the export data the go command
	// already built: ImportMap canonicalizes source import paths, and
	// PackageFile locates each canonical path's archive.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	pkg := lint.NewPackage(cfg.ImportPath, cfg.Dir, fset, files, tpkg, info)
	diags, err := lint.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeVetx(path string) {
	if path == "" {
		return
	}
	_ = os.MkdirAll(filepath.Dir(path), 0o777)
	_ = os.WriteFile(path, nil, 0o666)
}
