// Command streamadd serves the streaming anomaly detection API over HTTP.
// Every distinct stream id gets its own detector (built from the flags)
// and adaptive threshold; producers push vectors and receive scores:
//
//	streamadd -addr :8080 -model usad -channels 9 &
//	curl -XPOST localhost:8080/v1/streams/device-7/observe \
//	     -d '{"vector": [0.1, 0.3, ...]}'
//
// See internal/server for the API surface.
package main

import (
	"flag"
	"log"
	"net/http"

	"streamad"
	"streamad/internal/score"
	"streamad/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelName = flag.String("model", "usad", "model: arima|arima-ons|pcb|ae|usad|nbeats|var|knn")
		task1Name = flag.String("task1", "sw", "training-set strategy: sw|ures|ares")
		task2Name = flag.String("task2", "musigma", "drift strategy: musigma|kswin|regular")
		scoreName = flag.String("score", "likelihood", "anomaly score: avg|likelihood|raw")
		channels  = flag.Int("channels", 0, "stream dimensionality N (required)")
		window    = flag.Int("w", 32, "data representation length")
		train     = flag.Int("m", 200, "training set size")
		quantile  = flag.Float64("alert-quantile", 0.99, "adaptive alert quantile")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *channels <= 0 {
		log.Fatal("streamadd: -channels is required")
	}
	mk, err := streamad.ParseModelKind(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := streamad.ParseTask1(*task1Name)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := streamad.ParseTask2(*task2Name)
	if err != nil {
		log.Fatal(err)
	}
	sk, err := streamad.ParseScoreKind(*scoreName)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{
		NewDetector: func(stream string) (server.Stepper, error) {
			return streamad.New(streamad.Config{
				Model: mk, Task1: t1, Task2: t2, Score: sk,
				Channels: *channels, Window: *window, TrainSize: *train,
				Seed: *seed,
			})
		},
		NewThresholder: func(string) score.Thresholder {
			return score.NewQuantileThresholder(*quantile)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("streamadd listening on %s (model=%v task1=%v task2=%v score=%v N=%d)",
		*addr, mk, t1, t2, sk, *channels)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
