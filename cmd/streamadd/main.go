// Command streamadd serves the streaming anomaly detection API over HTTP.
// Every distinct stream id gets its own detector (built from the flags)
// and adaptive threshold; producers push vectors and receive scores:
//
//	streamadd -addr :8080 -model usad -channels 9 &
//	curl -XPOST localhost:8080/v1/streams/device-7/observe \
//	     -d '{"vector": [0.1, 0.3, ...]}'
//
// Fleet producers push NDJSON batches spanning many streams through the
// sharded ingestion layer (-shards, -queue-depth, -overload pick its
// shape; see internal/ingest):
//
//	curl -XPOST localhost:8080/v1/observe --data-binary $'
//	{"stream": "device-7", "vector": [0.1, 0.3]}
//	{"stream": "device-9", "vector": [0.2, 0.0]}'
//
// With -state-dir the daemon is crash-recoverable: vectors are written to
// a per-stream WAL before scoring, detectors are checkpointed in the
// background, and a restart with the same flags and state dir resumes
// every stream exactly where it stopped. See internal/server for the API
// surface and internal/persist for the on-disk format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamad"
	"streamad/internal/cluster"
	"streamad/internal/ingest"
	"streamad/internal/persist"
	"streamad/internal/score"
	"streamad/internal/server"
)

//streamad:lifecycle — process entrypoint; the serve goroutine is joined by graceful Shutdown.
func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		spec        = flag.String("spec", "", `pipeline or ensemble spec, e.g. "arima+sw+kswin" or "ensemble(arima+sw+kswin, usad+ares+regular; agg=median)"; overrides -model/-task1/-task2/-score`)
		modelName   = flag.String("model", "usad", "model: arima|arima-ons|pcb|ae|usad|nbeats|var|knn")
		task1Name   = flag.String("task1", "sw", "training-set strategy: sw|ures|ares")
		task2Name   = flag.String("task2", "musigma", "drift strategy: musigma|kswin|regular|adwin")
		scoreName   = flag.String("score", "likelihood", "anomaly score: avg|likelihood|raw")
		channels    = flag.Int("channels", 0, "stream dimensionality N (required)")
		window      = flag.Int("w", 32, "data representation length")
		train       = flag.Int("m", 200, "training set size")
		alertPolicy = flag.String("alert-policy", "quantile", "alert decision rule: quantile (adaptive P² quantile) | conformal (sliding-window conformal p-value)")
		quantile    = flag.Float64("alert-quantile", 0.99, "adaptive alert quantile (policy=quantile)")
		alertEps    = flag.Float64("alert-epsilon", 0.01, "target false-positive rate of the conformal rule (policy=conformal)")
		alertCalib  = flag.Int("alert-calib", 256, "conformal calibration-window capacity (policy=conformal)")
		seed        = flag.Int64("seed", 1, "random seed")
		asyncFT     = flag.Bool("async-finetune", false, "fine-tune on a background goroutine (serve/train split): scoring keeps serving the old model while the new one trains")

		scoreWorkers = flag.Int("score-workers", 0, "shared scoring-pool workers; dispatcher and ensemble-member scoring run here, keeping goroutines O(workers) not O(streams) (0 = GOMAXPROCS)")
		trainSlots   = flag.Int("train-slots", 0, "concurrent fine-tune slots in the shared trainer pool with cross-stream fairness (0 = one background goroutine per detector; requires -async-finetune to matter)")

		stateDir     = flag.String("state-dir", "", "directory for snapshots and WALs (empty = no persistence)")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second, "background checkpoint period (requires -state-dir)")
		snapEntries  = flag.Int("snapshot-entries", 256, "checkpoint a stream once this many vectors sit in its WAL (0 = timer only)")

		shards     = flag.Int("shards", 8, "stream registry shards")
		queueDepth = flag.Int("queue-depth", 64, "bounded per-stream ingestion queue depth")
		overload   = flag.String("overload", "block", "full-queue policy: block (backpressure) | shed (429 + Retry-After) | drop-oldest")
		streamTTL  = flag.Duration("stream-ttl", 0, "checkpoint and unload streams idle this long (0 = keep forever)")
		maxStreams = flag.Int("max-streams", 0, "maximum live (hot+warm) streams (0 = 1024)")
		metricsCap = flag.Int("metrics-stream-cap", 0, "streams with per-stream /metrics series, first N by id; the rest are counted in streamad_metrics_streams_omitted (0 = 500, negative = unlimited)")
		warmAfter  = flag.Duration("tier-warm-after", 0, "demote streams idle this long to the warm tier: model stays resident, window state pages to -state-dir until the next observe (0 = never; requires -state-dir)")

		clusterPeers   = flag.String("cluster-peers", "", "comma-separated base URLs of every cluster node, self included (empty = single node)")
		clusterSelf    = flag.String("cluster-self", "", "this node's base URL as it appears in -cluster-peers (required with -cluster-peers)")
		clusterVnodes  = flag.Int("cluster-vnodes", 64, "virtual nodes per member on the consistent-hash ring")
		probeInterval  = flag.Duration("cluster-probe-interval", time.Second, "peer health-probe period")
		probeFailures  = flag.Int("cluster-probe-failures", 2, "consecutive probe failures before a peer is marked down")
		rebalanceEvery = flag.Duration("cluster-rebalance-interval", 2*time.Second, "how often misplaced streams are migrated to their ring owners (<0 disables)")
		standbyEvery   = flag.Duration("cluster-standby-interval", time.Second, "how often warm standby replicas sync against their owners' WALs (<0 disables)")
	)
	flag.Parse()
	policy, err := ingest.ParsePolicy(*overload)
	if err != nil {
		log.Fatal(err)
	}
	if *channels <= 0 {
		log.Fatal("streamadd: -channels is required")
	}
	scorePool := streamad.NewScoringPool(*scoreWorkers)
	defer scorePool.Close()
	var trainerPool *streamad.TrainerPool
	if *trainSlots > 0 {
		trainerPool = streamad.NewTrainerPool(*trainSlots)
		defer trainerPool.Close()
	}
	base := streamad.Config{
		Channels: *channels, Window: *window, TrainSize: *train, Seed: *seed,
		AsyncFineTune: *asyncFT,
		ScorePool:     scorePool,
		TrainerPool:   trainerPool,
	}
	var (
		newDetector func(string) (server.Stepper, error)
		pipeline    string
	)
	if *spec != "" {
		// Build one throwaway detector now so a bad spec — including member
		// pipelines the model layer rejects — fails at startup, not on the
		// first observe.
		probe, err := streamad.NewFromSpec(*spec, base)
		if err != nil {
			log.Fatal(err)
		}
		if c, ok := probe.(interface{ Close() }); ok {
			c.Close()
		}
		newDetector = func(id string) (server.Stepper, error) {
			b := base
			b.TrainerKey = id // the stream is the trainer pool's fairness principal
			return streamad.NewFromSpec(*spec, b)
		}
		pipeline = "spec=" + *spec
	} else {
		mk, err := streamad.ParseModelKind(*modelName)
		if err != nil {
			log.Fatal(err)
		}
		t1, err := streamad.ParseTask1(*task1Name)
		if err != nil {
			log.Fatal(err)
		}
		t2, err := streamad.ParseTask2(*task2Name)
		if err != nil {
			log.Fatal(err)
		}
		sk, err := streamad.ParseScoreKind(*scoreName)
		if err != nil {
			log.Fatal(err)
		}
		cfg := base
		cfg.Model, cfg.Task1, cfg.Task2, cfg.Score = mk, t1, t2, sk
		newDetector = func(id string) (server.Stepper, error) {
			c := cfg
			c.TrainerKey = id
			return streamad.New(c)
		}
		pipeline = fmt.Sprintf("model=%v task1=%v task2=%v score=%v", mk, t1, t2, sk)
	}

	var store *persist.Store
	if *stateDir != "" {
		store, err = persist.Open(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
	}

	var newThresholder func(string) score.Thresholder
	switch *alertPolicy {
	case "quantile":
		newThresholder = func(string) score.Thresholder {
			return score.NewQuantileThresholder(*quantile)
		}
	case "conformal":
		if *alertEps <= 0 || *alertEps >= 1 {
			log.Fatalf("streamadd: -alert-epsilon must be in (0,1), got %g", *alertEps)
		}
		if *alertCalib < 1 {
			log.Fatalf("streamadd: -alert-calib must be positive, got %d", *alertCalib)
		}
		newThresholder = func(string) score.Thresholder {
			return score.NewConformal(*alertCalib, *alertEps)
		}
	default:
		log.Fatalf("streamadd: unknown -alert-policy %q (want quantile or conformal)", *alertPolicy)
	}

	var clusterCfg *cluster.Config
	if *clusterPeers != "" {
		if *clusterSelf == "" {
			log.Fatal("streamadd: -cluster-self is required with -cluster-peers")
		}
		clusterCfg = &cluster.Config{
			Self:              *clusterSelf,
			Peers:             strings.Split(*clusterPeers, ","),
			VirtualNodes:      *clusterVnodes,
			ProbeInterval:     *probeInterval,
			ProbeFailures:     *probeFailures,
			RebalanceInterval: *rebalanceEvery,
			StandbyInterval:   *standbyEvery,
		}
	}

	srv, err := server.New(server.Config{
		NewDetector:      newDetector,
		NewThresholder:   newThresholder,
		MaxStreams:       *maxStreams,
		Shards:           *shards,
		QueueDepth:       *queueDepth,
		Overload:         policy,
		StreamTTL:        *streamTTL,
		WarmAfter:        *warmAfter,
		MetricsStreamCap: *metricsCap,
		ScorePool:        scorePool,
		TrainerPool:      trainerPool,
		Store:            store,
		SnapshotInterval: *snapInterval,
		SnapshotEvery:    *snapEntries,
		Logf:             log.Printf,
		Cluster:          clusterCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if store != nil {
		restored, warnings, err := srv.RestoreStreams()
		if err != nil {
			log.Fatalf("streamadd: state dir %s is damaged: %v", *stateDir, err)
		}
		for _, w := range warnings {
			log.Printf("streamadd: recovery: %s", w)
		}
		if restored > 0 {
			log.Printf("streamadd: restored %d stream(s) from %s", restored, *stateDir)
		}
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("streamadd listening on %s (%s N=%d, %d shards, queue %d, overload=%s)",
		*addr, pipeline, *channels, *shards, *queueDepth, policy)
	if clusterCfg != nil {
		// After the listener is up, so peers' health probes of this node
		// succeed from the first tick.
		srv.StartCluster()
		log.Printf("streamadd: cluster node %s of %d peers", *clusterSelf, len(clusterCfg.Peers))
	}

	select {
	case <-ctx.Done():
		log.Print("streamadd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutCtx); err != nil {
			log.Printf("streamadd: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
	// In-flight observes have drained; take the final checkpoint so the
	// next start replays an empty (or near-empty) WAL.
	if err := srv.Close(); err != nil {
		log.Printf("streamadd: final checkpoint: %v", err)
	}
}
