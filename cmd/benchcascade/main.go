// Command benchcascade regenerates BENCH_cascade.json: one in-process
// run of a deterministic scenario through the always-on heavy pipeline
// and through the cascade that screens for it, on identical vectors.
// The report compares mean per-vector cost, point recall under the same
// adaptive-quantile alert policy, and the conformal gate's observed
// false-admission rate against its configured target:
//
//	benchcascade -heavy knn -gate zscore -admit 0.1 -out BENCH_cascade.json
//
// The command self-grades: it exits 1 when the cascade misses the cost
// or quality gates (-min-cost-reduction, -max-recall-loss-pt,
// -admit-slack), 2 on harness errors, so make ci can run it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"streamad"
	"streamad/internal/scenario"
	"streamad/internal/score"
)

// defaultScenario is the soak workload with the drift pushed out to
// step 5000 so both detectors see a long stationary stretch first:
// 4-channel gaussian base, 2% labelled contamination, 4-sigma abrupt
// mean shift.
const defaultScenario = "drift(base(corpus=gauss,channels=4,p=0.02,pool=512),kind=abrupt,at=5000,shift=4)"

// Report is the BENCH_cascade.json document.
//
//streamad:finite-json — every float is routed through finite() when the report is assembled.
type Report struct {
	Scenario      string      `json:"scenario"`
	Seed          int64       `json:"seed"`
	Vectors       int         `json:"vectors"`
	Warmup        int         `json:"warmup_vectors"`
	AlertQuantile float64     `json:"alert_quantile"`
	Plain         RunStats    `json:"plain"`
	Cascade       CascadeRun  `json:"cascade"`
	CostReduction float64     `json:"cost_reduction"`
	RecallLossPt  float64     `json:"recall_loss_pt"`
	Gates         GatesReport `json:"gates"`
}

// RunStats is one detector's half of the comparison: per-vector Step
// cost over the post-warmup region and the exact-match confusion matrix
// under the shared alert policy.
type RunStats struct {
	Spec           string  `json:"spec"`
	MeanStepNs     float64 `json:"mean_step_ns"`
	Evaluated      int     `json:"evaluated_records"`
	TrueAnomalies  int     `json:"true_anomalies"`
	Alerts         int     `json:"alerts"`
	TruePositives  int     `json:"true_positives"`
	FalsePositives int     `json:"false_positives"`
	Recall         float64 `json:"recall"`
	Precision      float64 `json:"precision"`
	FalseAlarmRate float64 `json:"false_alarm_rate"`
}

// CascadeRun extends RunStats with the screen's admission accounting.
type CascadeRun struct {
	RunStats
	AdmitTarget float64 `json:"admit_target"`
	Screened    int     `json:"screened"`
	Admitted    int     `json:"admitted"`
	Forwarded   int     `json:"forwarded"`
	// AdmissionRate is admitted/(screened+admitted) over the whole run.
	AdmissionRate float64 `json:"admission_rate"`
	// HeavyRate is the fraction of all vectors the heavy tier scored,
	// ramp-up included.
	HeavyRate float64 `json:"heavy_rate"`
	// FalseAdmissionRate is the fraction of ground-truth-normal,
	// post-warmup vectors the gate admitted while screening was active —
	// the empirical check of the conformal target.
	FalseAdmissionRate float64 `json:"false_admission_rate"`
}

// GatesReport records the self-grading verdict.
type GatesReport struct {
	MinCostReduction float64  `json:"min_cost_reduction"`
	MaxRecallLossPt  float64  `json:"max_recall_loss_pt"`
	AdmitSlack       float64  `json:"admit_slack"`
	Violations       []string `json:"violations"`
	Pass             bool     `json:"pass"`
}

func main() {
	var (
		spec    = flag.String("scenario", defaultScenario, "scenario spec (internal/scenario grammar)")
		vectors = flag.Int("vectors", 16000, "vectors to stream")
		warmup  = flag.Int("warmup", 512, "leading vectors excluded from cost and detection metrics")
		seed    = flag.Int64("seed", 1, "scenario and detector seed")
		heavy   = flag.String("heavy", "knn", "heavy member spec (pipeline or ensemble grammar)")
		gate    = flag.String("gate", "zscore", "tier-0 gate: ewma|zscore|hampel|density")
		admit   = flag.Float64("admit", 0.1, "target false-admission rate of the conformal gate")
		calib   = flag.Int("calib", 128, "conformal calibration-window capacity")
		gatewin = flag.Int("gatewin", 64, "tier-0 gate ring length")
		window  = flag.Int("w", 16, "data representation length")
		train   = flag.Int("m", 256, "training set size")
		quant   = flag.Float64("alert-quantile", 0.98, "adaptive alert quantile shared by both runs")
		out     = flag.String("out", "BENCH_cascade.json", "report path (empty: stdout only)")

		minCost    = flag.Float64("min-cost-reduction", 5, "gate: min plain/cascade mean per-vector cost ratio (0 disables)")
		maxLoss    = flag.Float64("max-recall-loss-pt", 2, "gate: max recall loss in percentage points (negative disables)")
		admitSlack = flag.Float64("admit-slack", 0.5, "gate: max relative error of observed vs target false-admission rate (negative disables)")
	)
	flag.Parse()

	rep, err := bench(*spec, *seed, *vectors, *warmup, *heavy, *gate,
		*admit, *calib, *gatewin, *window, *train, *quant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcascade:", err)
		os.Exit(2)
	}
	rep.Gates = grade(rep, *minCost, *maxLoss, *admitSlack)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcascade:", err)
		os.Exit(2)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcascade:", err)
			os.Exit(2)
		}
	}
	os.Stdout.Write(blob)
	fmt.Fprintf(os.Stderr, "benchcascade: %.0fns/vec plain vs %.0fns/vec cascade (%.1fx), recall %.4f vs %.4f (%.2fpt loss), false admission %.4f vs target %.4f\n",
		rep.Plain.MeanStepNs, rep.Cascade.MeanStepNs, rep.CostReduction,
		rep.Plain.Recall, rep.Cascade.Recall, rep.RecallLossPt,
		rep.Cascade.FalseAdmissionRate, rep.Cascade.AdmitTarget)
	if !rep.Gates.Pass {
		for _, v := range rep.Gates.Violations {
			fmt.Fprintln(os.Stderr, "benchcascade: gate violation:", v)
		}
		os.Exit(1)
	}
}

func bench(spec string, seed int64, vectors, warmup int, heavy, gate string,
	admit float64, calib, gatewin, window, train int, quant float64) (*Report, error) {
	if vectors <= 0 || warmup < 0 || warmup >= vectors {
		return nil, fmt.Errorf("need warmup in [0, vectors); got warmup %d, vectors %d", warmup, vectors)
	}
	sc, err := scenario.Parse(spec)
	if err != nil {
		return nil, err
	}
	gen, err := sc.NewStream(scenario.DeriveSeed(seed, "bench"))
	if err != nil {
		return nil, err
	}
	series := make([][]float64, vectors)
	labels := make([]bool, vectors)
	for i := range series {
		v, anom := gen.Next()
		row := make([]float64, len(v))
		for c, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			row[c] = x
		}
		series[i], labels[i] = row, anom
	}

	// The cascade spec is parsed from the same grammar the server
	// accepts, so the heavy member label in the report is the canonical
	// form and the plain run is built from exactly that spec.
	casSpec, err := streamad.ParseCascadeSpec(fmt.Sprintf("cascade(%s, %s; admit=%g, calib=%d, gatewin=%d)",
		gate, heavy, admit, calib, gatewin))
	if err != nil {
		return nil, err
	}
	base := streamad.Config{Channels: gen.Channels(), Window: window, TrainSize: train, Seed: seed}

	rep := &Report{
		Scenario: spec, Seed: seed, Vectors: vectors, Warmup: warmup,
		AlertQuantile: quant,
	}

	plainDet, err := streamad.NewFromSpec(casSpec.Heavy[0], base)
	if err != nil {
		return nil, err
	}
	rep.Plain = evalRun(plainDet, casSpec.Heavy[0], series, labels, warmup, quant, nil)

	cas, err := streamad.NewCascade(base, casSpec)
	if err != nil {
		return nil, err
	}
	defer cas.Close()
	var adm admitTrack
	rep.Cascade.RunStats = evalRun(cas, casSpec.String(), series, labels, warmup, quant, &adm)
	st := cas.Stats()
	rep.Cascade.AdmitTarget = finite(st.AdmitTarget)
	rep.Cascade.Screened = st.Screened
	rep.Cascade.Admitted = st.Admitted
	rep.Cascade.Forwarded = st.Forwarded
	rep.Cascade.AdmissionRate = finite(st.AdmissionRate)
	rep.Cascade.HeavyRate = finite(st.HeavyRate)
	rep.Cascade.FalseAdmissionRate = ratio(adm.admittedNormals, adm.decidedNormals)

	if rep.Cascade.MeanStepNs > 0 {
		rep.CostReduction = finite(rep.Plain.MeanStepNs / rep.Cascade.MeanStepNs)
	}
	rep.RecallLossPt = finite((rep.Plain.Recall - rep.Cascade.Recall) * 100)
	return rep, nil
}

// admitTrack counts the gate's decisions on ground-truth-normal
// vectors: decided = screening was active on a post-warmup normal
// vector, admitted = it went to the heavy tier anyway.
type admitTrack struct {
	prevScreened    int
	prevAdmitted    int
	decidedNormals  int
	admittedNormals int
}

// evalRun streams the series through one detector, timing Step alone
// (the alert policy runs outside the timed region so nanosecond gates
// are not diluted) and classifying post-warmup records exactly. When
// adm is non-nil the detector is the cascade and per-step admission
// decisions are recovered from its counter deltas.
func evalRun(det streamad.StreamDetector, spec string, series [][]float64, labels []bool,
	warmup int, quant float64, adm *admitTrack) RunStats {
	rs := RunStats{Spec: spec}
	thr := score.NewQuantileThresholder(quant)
	cas, _ := det.(*streamad.Cascade)
	var stepTime time.Duration
	timed := 0
	for i, v := range series {
		t0 := time.Now()
		res, ok := det.Step(v)
		if i >= warmup {
			stepTime += time.Since(t0)
			timed++
		}
		if adm != nil && cas != nil {
			st := cas.Stats()
			screened := st.Screened > adm.prevScreened
			admitted := st.Admitted > adm.prevAdmitted
			adm.prevScreened, adm.prevAdmitted = st.Screened, st.Admitted
			if (screened || admitted) && i >= warmup && !labels[i] {
				adm.decidedNormals++
				if admitted {
					adm.admittedNormals++
				}
			}
		}
		if !ok {
			continue
		}
		alert := thr.Alert(res.Nonconformity)
		if i < warmup {
			continue
		}
		rs.Evaluated++
		if labels[i] {
			rs.TrueAnomalies++
		}
		if alert {
			rs.Alerts++
			if labels[i] {
				rs.TruePositives++
			} else {
				rs.FalsePositives++
			}
		}
	}
	if timed > 0 {
		rs.MeanStepNs = finite(float64(stepTime.Nanoseconds()) / float64(timed))
	}
	rs.Recall = ratio(rs.TruePositives, rs.TrueAnomalies)
	rs.Precision = ratio(rs.TruePositives, rs.Alerts)
	rs.FalseAlarmRate = ratio(rs.FalsePositives, rs.Evaluated-rs.TrueAnomalies)
	return rs
}

// grade evaluates the self-grading gates against the finished report.
func grade(rep *Report, minCost, maxLoss, admitSlack float64) GatesReport {
	g := GatesReport{MinCostReduction: minCost, MaxRecallLossPt: maxLoss, AdmitSlack: admitSlack}
	if minCost > 0 && rep.CostReduction < minCost {
		g.Violations = append(g.Violations,
			fmt.Sprintf("cost reduction %.2fx below gate %.2fx", rep.CostReduction, minCost))
	}
	if maxLoss >= 0 && rep.RecallLossPt > maxLoss {
		g.Violations = append(g.Violations,
			fmt.Sprintf("recall loss %.2fpt exceeds gate %.2fpt", rep.RecallLossPt, maxLoss))
	}
	if admitSlack >= 0 && rep.Cascade.AdmitTarget > 0 {
		rel := math.Abs(rep.Cascade.FalseAdmissionRate-rep.Cascade.AdmitTarget) / rep.Cascade.AdmitTarget
		if rel > admitSlack {
			g.Violations = append(g.Violations,
				fmt.Sprintf("false admission %.4f is %.0f%% off target %.4f (gate ±%.0f%%)",
					rep.Cascade.FalseAdmissionRate, rel*100, rep.Cascade.AdmitTarget, admitSlack*100))
		}
	}
	g.Pass = len(g.Violations) == 0
	return g
}

// ratio is num/den with an explicit zero-denominator guard, so the
// report never carries NaN into JSON.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return finite(float64(num) / float64(den))
}

// finite zeroes non-finite values before they reach the JSON report.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}
