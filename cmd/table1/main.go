// Command table1 prints the Table I reproduction: the grid of 26
// evaluated algorithm combinations (model × Task 1 × Task 2), with the
// nonconformity and anomaly scores each combination uses.
package main

import (
	"fmt"

	"streamad"
)

func main() {
	combos := streamad.Combos()
	fmt.Printf("Table I — %d evaluated combinations\n\n", len(combos))
	fmt.Printf("%-3s %-14s %-6s %-6s %-18s %s\n", "#", "Model", "Task1", "Task2", "Nonconformity", "Anomaly scores")
	for i, c := range combos {
		nc := "cosine similarity"
		if c.Model == streamad.ModelPCBIForest {
			nc = "iForest score"
		}
		fmt.Printf("%-3d %-14s %-6s %-6s %-18s %s\n",
			i+1, c.Model, c.Task1, c.Task2, nc, "Average, Anomaly Likelihood")
	}
}
