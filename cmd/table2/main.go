// Command table2 reproduces Table II: the per-time-step mathematical
// operation counts of the two Task 2 concept-drift strategies, measured
// on an instrumented run next to the paper's closed-form formulas.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamad/internal/bench"
)

func main() {
	var (
		channels = flag.Int("n", 9, "channel count N")
		window   = flag.Int("w", 100, "data representation length w")
		train    = flag.Int("m", 500, "training set length m")
		steps    = flag.Int("steps", 50, "measured time steps")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	fmt.Printf("Table II — mathematical operations per time step (N=%d, w=%d, m=%d)\n\n",
		*channels, *window, *train)
	rows := bench.OpCountExperiment(*channels, *window, *train, *steps, *seed)
	bench.WriteTable2(os.Stdout, rows)
	fmt.Println("\nThe KSWIN method requires roughly m× more additions and multiplications")
	fmt.Println("and a log-factor more comparisons than μ/σ-Change, motivating the paper's")
	fmt.Println("recommendation of the cheaper strategy given their near-identical accuracy.")
}
