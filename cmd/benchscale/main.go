// Command benchscale regenerates BENCH_scale.json: an in-process
// goroutine-economy benchmark of the serving stack at fleet scale. It
// walks a large stream population (default 10k) around the residency
// ladder in four phases against a durable registry running the shared
// scoring pool and trainer pool:
//
//  1. register: every stream observes a few vectors (fleet all-hot);
//  2. demote: one PageIdle sweep pages the entire fleet to warm,
//     timing the page-out rate;
//  3. steady: only the hot fraction (default 1%) sees traffic — each
//     hot stream's first observe transparently pages it back in;
//  4. evict: one EvictIdle sweep sends every stream that saw no steady
//     traffic cold, timing the eviction rate.
//
// Sweeps use synthetic cutoffs anchored at phase marks (the unit tests'
// idiom), so the censuses are deterministic however long a sweep takes.
//
//	benchscale -streams 10000 -hot-frac 0.01 -out BENCH_scale.json
//
// The report records goroutine count and heap at the phase boundaries
// plus tier censuses, transition totals, pool load, and hot-path
// throughput. The command self-grades and exits 1 when a scale gate is
// missed:
//
//   - goroutines stay O(workers): the steady-state count may exceed the
//     baseline by at most score workers + train slots + -goroutine-slack,
//     independent of the stream population;
//   - residency collapses to the working set: steady-state resident
//     (hot+warm) streams must not exceed -max-resident (default
//     2*hot + 64), and hot + warm must equal the registry's resident
//     count exactly;
//   - every hot stream actually took the warm→hot restore path during
//     the steady phase (warm_to_hot >= hot streams);
//   - memory tracks residency, not registrations: steady-state heap must
//     be at most -max-heap-frac (default 0.8) of the all-resident heap.
//
// Exit 2 means a harness error (a failed observe, a build error), not a
// gate miss.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamad"
	"streamad/internal/ingest"
	"streamad/internal/persist"
)

// Report is the BENCH_scale.json document.
//
//streamad:finite-json — every float is routed through round3 (zeroes non-finite) when the report is assembled.
type Report struct {
	Streams     int     `json:"streams"`
	HotStreams  int     `json:"hot_streams"`
	HotFraction float64 `json:"hot_fraction"`
	Channels    int     `json:"channels"`
	RegisterObs int     `json:"register_observations"`

	ScoreWorkers int    `json:"score_workers"`
	TrainSlots   int    `json:"train_slots"`
	WarmAfter    string `json:"warm_after"`
	StreamTTL    string `json:"stream_ttl"`

	Baseline   PhaseStats `json:"baseline"`
	Registered PhaseStats `json:"registered"`
	Warm       PhaseStats `json:"all_warm"`
	Steady     PhaseStats `json:"steady"`

	RegisterSeconds    float64 `json:"register_seconds"`
	RegisterVecPerSec  float64 `json:"register_vec_per_sec"`
	DemotedStreams     int     `json:"demoted_streams"`
	PageOutPerSec      float64 `json:"page_out_per_sec"`
	SteadySeconds      float64 `json:"steady_seconds"`
	SteadyObservations uint64  `json:"steady_observations"`
	SteadyVecPerSec    float64 `json:"steady_vec_per_sec"`
	EvictedStreams     int     `json:"evicted_streams"`
	EvictPerSec        float64 `json:"evict_per_sec"`

	Transitions TransitionStats `json:"tier_transitions"`
	TrainerPool TrainerStats    `json:"trainer_pool"`

	Gates GatesReport `json:"gates"`
}

// PhaseStats is one measurement point: process shape plus the registry's
// tier census. Measurements are taken after runtime.GC with no producers
// running, so heap reflects retained state, not allocation churn.
type PhaseStats struct {
	Goroutines  int     `json:"goroutines"`
	HeapMB      float64 `json:"heap_mb"`
	Resident    int     `json:"resident_streams"`
	HotTier     int     `json:"hot"`
	WarmTier    int     `json:"warm"`
	ColdTier    int     `json:"cold"`
	PoolWorkers int     `json:"score_pool_workers"`
}

// TransitionStats mirrors the streamad_tier_transitions_total families.
type TransitionStats struct {
	HotToWarm  uint64 `json:"hot_to_warm"`
	WarmToHot  uint64 `json:"warm_to_hot"`
	WarmToCold uint64 `json:"warm_to_cold"`
	HotToCold  uint64 `json:"hot_to_cold"`
	ColdToHot  uint64 `json:"cold_to_hot"`
}

// TrainerStats mirrors the streamad_pool_train_* families.
type TrainerStats struct {
	Slots     int    `json:"slots"`
	Completed uint64 `json:"completed"`
	Canceled  uint64 `json:"canceled"`
}

// GatesReport is the self-grading verdict.
type GatesReport struct {
	MaxExtraGoroutines int     `json:"max_extra_goroutines"`
	ExtraGoroutines    int     `json:"extra_goroutines"`
	GoroutinesOK       bool    `json:"goroutines_ok"`
	MaxResident        int     `json:"max_resident"`
	ResidentOK         bool    `json:"resident_ok"`
	TiersConsistent    bool    `json:"tiers_consistent"`
	PromotionsOK       bool    `json:"promotions_ok"`
	MaxHeapFraction    float64 `json:"max_heap_fraction"`
	HeapFraction       float64 `json:"heap_fraction"`
	HeapOK             bool    `json:"heap_ok"`
	Pass               bool    `json:"pass"`
}

func main() {
	var (
		streams     = flag.Int("streams", 10000, "fleet size to register")
		hotFrac     = flag.Float64("hot-frac", 0.01, "fraction of the fleet driven during the steady phase")
		channels    = flag.Int("channels", 4, "stream dimensionality")
		registerObs = flag.Int("register-obs", 3, "observations per stream during registration")
		steadyFor   = flag.Duration("steady", 2*time.Second, "steady-phase duration")
		producers   = flag.Int("producers", 8, "concurrent producer goroutines")
		workers     = flag.Int("score-workers", 0, "scoring-pool workers (0 = GOMAXPROCS)")
		trainSlots  = flag.Int("train-slots", 2, "trainer-pool slots")
		warmAfter   = flag.Duration("warm-after", 300*time.Millisecond, "hot→warm demotion idle threshold")
		streamTTL   = flag.Duration("stream-ttl", time.Hour, "warm→cold eviction idle threshold; kept large so only the benchmark's anchored sweep (never a background tick racing a slow sweep) decides who goes cold")
		stateDir    = flag.String("state-dir", "", "snapshot/WAL/page directory (empty = a temp dir, removed afterwards)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		goroSlack   = flag.Int("goroutine-slack", 64, "allowed goroutines beyond baseline+workers+slots (registry internals, runtime)")
		maxResident = flag.Int("max-resident", 0, "steady-state resident-stream ceiling (0 = 2*hot+64)")
		maxHeapFrac = flag.Float64("max-heap-frac", 0.8, "steady heap ceiling as a fraction of all-resident heap")
		seed        = flag.Int64("seed", 1, "synthetic waveform seed")
	)
	flag.Parse()
	if *streams <= 0 || *hotFrac <= 0 || *hotFrac > 1 {
		fatal(fmt.Errorf("benchscale: need -streams > 0 and -hot-frac in (0,1]"))
	}
	hot := int(float64(*streams) * *hotFrac)
	if hot < 1 {
		hot = 1
	}

	dir := *stateDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "benchscale-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := persist.Open(dir)
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	// Baseline before any pool exists, so the gate measures everything the
	// serving stack adds.
	runtime.GC()
	baseline := PhaseStats{Goroutines: runtime.NumGoroutine(), HeapMB: heapMB()}

	sp := streamad.NewScoringPool(*workers)
	defer sp.Close()
	tp := streamad.NewTrainerPool(*trainSlots)
	defer tp.Close()
	det := streamad.Config{
		Model: streamad.ModelARIMA, Task1: streamad.TaskSlidingWindow,
		Task2: streamad.TaskMuSigma, Score: streamad.ScoreRaw,
		Channels: *channels, Window: 8, TrainSize: 16, WarmupVectors: 16,
		Seed: *seed, AsyncFineTune: true, TrainerPool: tp,
	}
	reg, err := ingest.New(ingest.Config{
		NewDetector: func(id string) (ingest.Stepper, error) {
			c := det
			c.TrainerKey = id
			return streamad.New(c)
		},
		Shards:     64,
		MaxStreams: *streams,
		StreamTTL:  *streamTTL,
		WarmAfter:  *warmAfter,
		Store:      store,
		ScorePool:  sp,
	})
	if err != nil {
		fatal(err)
	}
	defer reg.Close()

	// Phase 1: register the whole fleet (everything lands hot-resident).
	regStart := time.Now()
	if err := drive(reg, *producers, func(p, nProducers int) error {
		buf := make([]float64, *channels)
		for i := p; i < *streams; i += nProducers {
			id := streamID(i)
			for k := 0; k < *registerObs; k++ {
				if _, err := reg.Observe(id, synth(buf, i, k, *seed)); err != nil {
					return fmt.Errorf("register %s: %w", id, err)
				}
			}
		}
		return nil
	}); err != nil {
		fatal(err)
	}
	regSecs := time.Since(regStart).Seconds()
	regEnd := time.Now()
	registered := measure(reg)

	// Phase 2: fast-forward the whole fleet to warm. The sweep uses a
	// synthetic "now" anchored just past the registration mark — exactly
	// the unit tests' idiom — so the outcome is the same whether the
	// page-out sweep takes milliseconds or minutes: everything touched
	// during registration demotes, full stop. (At fleet scale the sweep
	// itself is the measured quantity: page_out_per_sec.)
	demoteStart := time.Now()
	demoted := reg.PageIdle(regEnd.Add(*warmAfter))
	demoteSecs := time.Since(demoteStart).Seconds()
	warm := measure(reg)

	// Phase 3: steady state. Only the hot set sees traffic; each hot
	// stream's first observe transparently pages it back in, so after this
	// phase the hot tier is exactly the working set.
	var steadyObs atomic.Uint64
	steadyStart := time.Now()
	if err := drive(reg, *producers, func(p, nProducers int) error {
		buf := make([]float64, *channels)
		for k := *registerObs; time.Since(steadyStart) < *steadyFor; k++ {
			for i := p; i < hot; i += nProducers {
				if _, err := reg.Observe(streamID(i), synth(buf, i, k, *seed)); err != nil {
					return fmt.Errorf("steady %s: %w", streamID(i), err)
				}
				steadyObs.Add(1)
			}
		}
		return nil
	}); err != nil {
		fatal(err)
	}
	steadySecs := time.Since(steadyStart).Seconds()

	// Phase 4: cold-evict the idle 99%. Anchoring the cutoff at the
	// steady-phase start evicts exactly the streams that saw no steady
	// traffic, however long the sweep takes — the hot set survives by
	// construction, not by racing the clock.
	evictStart := time.Now()
	evicted := reg.EvictIdle(steadyStart.Add(*streamTTL))
	evictSecs := time.Since(evictStart).Seconds()
	steady := measure(reg)

	st := reg.Stats()
	rep := Report{
		Streams: *streams, HotStreams: hot, HotFraction: round3(*hotFrac),
		Channels: *channels, RegisterObs: *registerObs,
		ScoreWorkers: sp.Workers(), TrainSlots: tp.Slots(),
		WarmAfter: warmAfter.String(), StreamTTL: streamTTL.String(),
		Baseline: baseline, Registered: registered, Warm: warm, Steady: steady,
		RegisterSeconds:    round3(regSecs),
		RegisterVecPerSec:  round3(float64(*streams**registerObs) / regSecs),
		DemotedStreams:     demoted,
		PageOutPerSec:      round3(float64(demoted) / demoteSecs),
		SteadySeconds:      round3(steadySecs),
		SteadyObservations: steadyObs.Load(),
		SteadyVecPerSec:    round3(float64(steadyObs.Load()) / steadySecs),
		EvictedStreams:     evicted,
		EvictPerSec:        round3(float64(evicted) / evictSecs),
		Transitions: TransitionStats{
			HotToWarm: st.HotToWarm, WarmToHot: st.WarmToHot,
			WarmToCold: st.WarmToCold, HotToCold: st.HotToCold,
			ColdToHot: st.ColdToHot,
		},
		TrainerPool: TrainerStats{
			Slots:     tp.Slots(),
			Completed: tp.Stats().Completed,
			Canceled:  tp.Stats().Canceled,
		},
	}

	g := &rep.Gates
	g.MaxExtraGoroutines = sp.Workers() + tp.Slots() + *goroSlack
	g.ExtraGoroutines = steady.Goroutines - baseline.Goroutines
	g.GoroutinesOK = g.ExtraGoroutines <= g.MaxExtraGoroutines
	g.MaxResident = *maxResident
	if g.MaxResident == 0 {
		g.MaxResident = 2*hot + 64
	}
	g.ResidentOK = steady.Resident <= g.MaxResident
	g.TiersConsistent = steady.HotTier+steady.WarmTier == steady.Resident
	g.PromotionsOK = st.WarmToHot >= uint64(hot)
	g.MaxHeapFraction = round3(*maxHeapFrac)
	if registered.HeapMB > 0 {
		g.HeapFraction = round3(steady.HeapMB / registered.HeapMB)
	}
	g.HeapOK = g.HeapFraction <= g.MaxHeapFraction
	g.Pass = g.GoroutinesOK && g.ResidentOK && g.TiersConsistent && g.PromotionsOK && g.HeapOK

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(buf)
	}
	fmt.Fprintf(os.Stderr,
		"benchscale: %d streams, %d hot: goroutines %d→%d (cap +%d), resident %d→%d (cap %d), heap %.1fMB→%.1fMB (cap %.0f%%)\n",
		*streams, hot, baseline.Goroutines, steady.Goroutines, g.MaxExtraGoroutines,
		registered.Resident, steady.Resident, g.MaxResident,
		registered.HeapMB, steady.HeapMB, g.MaxHeapFraction*100)
	if !g.Pass {
		fmt.Fprintln(os.Stderr, "benchscale: FAIL — a scale gate was missed (see gates in the report)")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchscale: PASS")
}

// drive fans fn out over n producer goroutines and joins them, returning
// the first error.
//
//streamad:lifecycle — producers are joined before drive returns.
func drive(_ *ingest.Registry, n int, fn func(p, nProducers int) error) error {
	if n < 1 {
		n = 1
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = fn(p, n)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// measure snapshots the process and registry shape after a GC, so heap
// numbers compare retained state across phases.
func measure(r *ingest.Registry) PhaseStats {
	runtime.GC()
	st := r.Stats()
	return PhaseStats{
		Goroutines:  runtime.NumGoroutine(),
		HeapMB:      heapMB(),
		Resident:    st.Streams,
		HotTier:     st.HotStreams,
		WarmTier:    st.WarmStreams,
		ColdTier:    st.ColdStreams,
		PoolWorkers: st.ScorePool.Workers,
	}
}

func heapMB() float64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return round3(float64(m.HeapAlloc) / (1 << 20))
}

func streamID(i int) string { return fmt.Sprintf("stream-%05d", i) }

// synth is a cheap deterministic waveform: distinct per stream and
// channel, drifting with the step index.
func synth(dst []float64, stream, step int, seed int64) []float64 {
	base := float64(stream%97) * 0.013
	for c := range dst {
		dst[c] = base + math.Sin(float64(step)*0.17+float64(c)+float64(seed)*0.01)
	}
	return dst
}

func round3(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return math.Round(f*1000) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
