package main

import (
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"streamad/internal/core"
	"streamad/internal/scenario"
	"streamad/internal/score"
	"streamad/internal/server"
)

// magDetector scores the mean absolute channel magnitude through tanh:
// deterministic, warmup-gated, and cleanly separable — gaussian base
// vectors score ~0.66, 10-sigma burst spikes score ~1.0.
type magDetector struct{ n int }

func (d *magDetector) Step(v []float64) (core.Result, bool) {
	if len(v) == 0 {
		return core.Result{}, false
	}
	d.n++
	sum := 0.0
	for _, x := range v {
		sum += math.Abs(x)
	}
	if d.n <= 8 {
		return core.Result{}, false
	}
	s := math.Tanh(sum / float64(len(v)))
	return core.Result{Score: s, Nonconformity: s}, true
}

func newSoakTarget(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		NewDetector: func(string) (server.Stepper, error) { return &magDetector{}, nil },
		NewThresholder: func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.9}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// burstSoak is the test workload: clean gaussian base, recurring
// 10-sigma bursts of 10 labelled anomalies every 100 steps.
const burstSoak = "burst(base(corpus=gauss,channels=3,p=0,pool=256),at=50,span=10,period=100,mag=10)"

func soakConfig(addr string) Config {
	return Config{
		Addr:    addr,
		Spec:    burstSoak,
		Seed:    42,
		Streams: 4,
		Rate:    4000, // keep the test fast; pacing still runs
		Batch:   20,
		Vectors: 300,
		Warmup:  40,
		SLO:     SLO{MaxShedRate: -1, MaxErrorRate: -1, Max5xx: -1, MinRecall: -1},
	}
}

// TestRunDetectionDeterministic runs the same soak against two fresh
// servers: the detection and record-accounting sections of the report
// must be identical — that is the BENCH_soak.json reproducibility
// contract. Latency differs between runs and is excluded.
func TestRunDetectionDeterministic(t *testing.T) {
	var reps [2]*Report
	for i := range reps {
		ts := newSoakTarget(t)
		rep, err := run(soakConfig(ts.URL))
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	a, b := reps[0], reps[1]
	if !reflect.DeepEqual(a.Detection, b.Detection) {
		t.Fatalf("detection sections diverge between identical runs:\n%+v\nvs\n%+v", a.Detection, b.Detection)
	}
	aReq, bReq := a.Requests, b.Requests
	if !reflect.DeepEqual(aReq, bReq) {
		t.Fatalf("request accounting diverges between identical runs:\n%+v\nvs\n%+v", aReq, bReq)
	}

	// Ground truth is exact: evaluated anomalies must equal the summed
	// per-stream ExactAnomalyCount over the post-warmup window.
	sc, err := scenario.Parse(burstSoak)
	if err != nil {
		t.Fatal(err)
	}
	cfg := soakConfig("unused")
	wantAnoms := 0
	for i := 0; i < cfg.Streams; i++ {
		s, err := sc.NewStream(scenario.DeriveSeed(cfg.Seed, "stream/"+string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		wantAnoms += s.ExactAnomalyCount(cfg.Vectors) - s.ExactAnomalyCount(cfg.Warmup)
	}
	if a.Detection.TrueAnomalies != wantAnoms {
		t.Fatalf("report counts %d true anomalies, ExactAnomalyCount says %d", a.Detection.TrueAnomalies, wantAnoms)
	}

	// The workload is separable by construction, so the detector must
	// actually catch the bursts and the accounting must hold together.
	if a.Detection.Recall < 0.9 {
		t.Fatalf("recall %.4f on 10-sigma bursts; detection plumbing is broken:\n%+v", a.Detection.Recall, a.Detection)
	}
	if a.Requests.RecordsSent != cfg.Streams*cfg.Vectors {
		t.Fatalf("sent %d records, want %d", a.Requests.RecordsSent, cfg.Streams*cfg.Vectors)
	}
	total := a.Requests.RecordsScored + a.Requests.RecordsNotReady +
		a.Requests.RecordsShed + a.Requests.RecordsDropped + a.Requests.RecordErrors
	if total != a.Requests.RecordsSent {
		t.Fatalf("record outcomes (%d) do not add up to records sent (%d): %+v", total, a.Requests.RecordsSent, a.Requests)
	}
	if a.Requests.HTTP5xx != 0 || a.Requests.TransportErrors != 0 || a.Requests.RecordErrors != 0 {
		t.Fatalf("healthy in-process run reported failures: %+v", a.Requests)
	}
	if !a.SLO.Pass {
		t.Fatalf("all gates disabled but SLO failed: %v", a.SLO.Violations)
	}
}

// TestRunAssertsSLOs: impossible gates must surface as violations with
// Pass=false (main turns that into exit code 1).
func TestRunAssertsSLOs(t *testing.T) {
	ts := newSoakTarget(t)
	cfg := soakConfig(ts.URL)
	cfg.SLO = SLO{MaxP99: time.Nanosecond, MaxShedRate: -1, MaxErrorRate: -1, Max5xx: -1, MinRecall: 1.01}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLO.Pass {
		t.Fatal("impossible SLOs passed")
	}
	if len(rep.SLO.Violations) != 2 {
		t.Fatalf("violations = %v, want p99 and recall", rep.SLO.Violations)
	}
	joined := strings.Join(rep.SLO.Violations, "\n")
	for _, want := range []string{"p99 latency", "recall"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations %q missing %q", joined, want)
		}
	}
}

// TestRunTimingFaultsStillAccountExactly: with jitter, lateness and
// reordering in the spec, every record still gets exactly one outcome
// and the ground-truth accounting stays exact — reordering perturbs
// sequence assignment, never the label pairing.
func TestRunTimingFaultsStillAccountExactly(t *testing.T) {
	ts := newSoakTarget(t)
	cfg := soakConfig(ts.URL)
	cfg.Spec = "reorder(jitter(" + burstSoak + ",frac=0.5),p=0.3)"
	cfg.Vectors = 200
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.RecordsSent != cfg.Streams*cfg.Vectors {
		t.Fatalf("sent %d records, want %d", rep.Requests.RecordsSent, cfg.Streams*cfg.Vectors)
	}
	total := rep.Requests.RecordsScored + rep.Requests.RecordsNotReady +
		rep.Requests.RecordsShed + rep.Requests.RecordsDropped + rep.Requests.RecordErrors
	if total != rep.Requests.RecordsSent {
		t.Fatalf("record outcomes (%d) do not add up to records sent (%d)", total, rep.Requests.RecordsSent)
	}
	if rep.Requests.TransportErrors != 0 || rep.Requests.RecordErrors != 0 {
		t.Fatalf("timing faults caused request failures: %+v", rep.Requests)
	}
}

// lagDetector reports the previous vector's magnitude score: every
// alert lands exactly one record after its cause, so exact matching
// misses the first record of each burst and flags the record after the
// last one, while point-adjust with tolerance 1 matches perfectly.
type lagDetector struct {
	n    int
	prev float64
}

func (d *lagDetector) Step(v []float64) (core.Result, bool) {
	if len(v) == 0 {
		return core.Result{}, false
	}
	d.n++
	sum := 0.0
	for _, x := range v {
		sum += math.Abs(x)
	}
	out := d.prev
	d.prev = math.Tanh(sum / float64(len(v)))
	if d.n <= 8 {
		return core.Result{}, false
	}
	return core.Result{Score: out, Nonconformity: out}, true
}

// TestRunTolerancePointAdjust: against the one-step-late detector,
// exact matching charges one false negative (the burst's first record)
// and one false positive (the record after it ends) per burst, while
// tolerance 1 absorbs both and recovers perfect detection.
func TestRunTolerancePointAdjust(t *testing.T) {
	newLagTarget := func() *httptest.Server {
		srv, err := server.New(server.Config{
			NewDetector: func(string) (server.Stepper, error) { return &lagDetector{}, nil },
			// 0.98 sits above the base corpus's noise ceiling (gaussian
			// magnitudes occasionally cross 0.9), so every alert is
			// burst-driven and the only errors left are lag artifacts.
			NewThresholder: func(string) score.Thresholder {
				return &score.StaticThresholder{T: 0.98}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts
	}

	var reps [2]*Report
	for i, tol := range []int{0, 1} {
		cfg := soakConfig(newLagTarget().URL)
		cfg.Tolerance = tol
		rep, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ToleranceVectors != tol {
			t.Fatalf("report tolerance %d, want %d", rep.ToleranceVectors, tol)
		}
		reps[i] = rep
	}
	exact, adj := reps[0].Detection, reps[1].Detection

	// Raw counts are matching-independent.
	if exact.Evaluated != adj.Evaluated || exact.TrueAnomalies != adj.TrueAnomalies || exact.Alerts != adj.Alerts {
		t.Fatalf("raw counts changed with tolerance:\n%+v\nvs\n%+v", exact, adj)
	}
	// Both matchings still classify every evaluated record exactly once.
	for _, d := range []DetectionStats{exact, adj} {
		if got := d.TruePositives + d.FalsePositives + d.FalseNegatives + d.TrueNegatives; got != d.Evaluated {
			t.Fatalf("confusion cells (%d) do not add up to evaluated records (%d): %+v", got, d.Evaluated, d)
		}
	}
	// Exact matching pays for the lag: one FN and one FP per burst.
	if exact.FalseNegatives == 0 || exact.FalsePositives == 0 {
		t.Fatalf("lagged detector scored perfectly under exact matching — lag plumbing broken: %+v", exact)
	}
	// Tolerance 1 covers a one-step lag completely.
	if adj.Recall != 1 || adj.FalseNegatives != 0 || adj.FalsePositives != 0 {
		t.Fatalf("tolerance 1 did not absorb a one-step lag: %+v", adj)
	}
	if adj.Recall <= exact.Recall {
		t.Fatalf("tolerance did not improve recall: exact %.4f vs adjusted %.4f", exact.Recall, adj.Recall)
	}
}

// TestRunMultiTarget: with a comma-separated -addr the fleet round-robins
// requests across both targets (staggered, so the split is exactly even),
// and the report grows a per-target breakdown in -addr order. Single-target
// runs must keep the breakdown omitted.
func TestRunMultiTarget(t *testing.T) {
	a, b := newSoakTarget(t), newSoakTarget(t)
	cfg := soakConfig(" " + a.URL + " , " + b.URL + "/ ") // parsing trims spaces and trailing slashes
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 2 || rep.Targets[0].URL != a.URL || rep.Targets[1].URL != b.URL {
		t.Fatalf("targets = %+v, want rows for %s then %s", rep.Targets, a.URL, b.URL)
	}
	ra, rb := rep.Targets[0], rep.Targets[1]
	if ra.HTTPRequests+rb.HTTPRequests != rep.Requests.HTTPRequests {
		t.Fatalf("per-target requests %d + %d do not add up to the aggregate %d",
			ra.HTTPRequests, rb.HTTPRequests, rep.Requests.HTTPRequests)
	}
	// 4 workers x 15 requests, staggered round-robin: exactly half each.
	if want := rep.Requests.HTTPRequests / 2; ra.HTTPRequests != want || rb.HTTPRequests != want {
		t.Fatalf("round-robin split %d/%d, want %d/%d", ra.HTTPRequests, rb.HTTPRequests, want, want)
	}
	for _, tr := range rep.Targets {
		if tr.TransportErrors != 0 || tr.HTTP5xx != 0 || tr.RecordErrors != 0 {
			t.Fatalf("healthy target %s reported failures: %+v", tr.URL, tr)
		}
		if tr.Latency.Requests != tr.HTTPRequests {
			t.Fatalf("target %s sampled %d latencies for %d requests", tr.URL, tr.Latency.Requests, tr.HTTPRequests)
		}
	}

	solo, err := run(soakConfig(a.URL))
	if err != nil {
		t.Fatal(err)
	}
	if solo.Targets != nil {
		t.Fatalf("single-target run grew a per-target breakdown: %+v", solo.Targets)
	}
}

// TestRunMultiTargetDeadPeer: when one target of a pair is unreachable,
// every failure lands in that target's row — the healthy node's row stays
// clean, so the report points at the broken peer instead of smearing the
// errors across the fleet.
func TestRunMultiTargetDeadPeer(t *testing.T) {
	live := newSoakTarget(t)
	const dead = "http://127.0.0.1:1"
	cfg := soakConfig(live.URL + "," + dead)
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("targets = %+v, want 2 rows", rep.Targets)
	}
	healthy, broken := rep.Targets[0], rep.Targets[1]
	if broken.TransportErrors != broken.HTTPRequests || broken.HTTPRequests == 0 {
		t.Fatalf("dead target: %d transport errors over %d requests, want every request to fail",
			broken.TransportErrors, broken.HTTPRequests)
	}
	if healthy.TransportErrors != 0 || healthy.HTTP5xx != 0 || healthy.RecordErrors != 0 {
		t.Fatalf("failures leaked into the healthy target's row: %+v", healthy)
	}
	if rep.Requests.TransportErrors != broken.TransportErrors {
		t.Fatalf("aggregate transport errors %d, dead target accounts for %d",
			rep.Requests.TransportErrors, broken.TransportErrors)
	}
	if rep.Requests.RecordErrors != broken.RecordErrors || broken.RecordErrors == 0 {
		t.Fatalf("aggregate record errors %d vs dead target's %d — failed batches must charge their target",
			rep.Requests.RecordErrors, broken.RecordErrors)
	}
	// Every record still gets exactly one outcome, errors included.
	total := rep.Requests.RecordsScored + rep.Requests.RecordsNotReady +
		rep.Requests.RecordsShed + rep.Requests.RecordsDropped + rep.Requests.RecordErrors
	if total != rep.Requests.RecordsSent {
		t.Fatalf("record outcomes (%d) do not add up to records sent (%d): %+v", total, rep.Requests.RecordsSent, rep.Requests)
	}
}

// TestRunValidation pins the harness-error paths (exit code 2 in main).
func TestRunValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"no addr":        func(c *Config) { c.Addr = "" },
		"zero streams":   func(c *Config) { c.Streams = 0 },
		"zero rate":      func(c *Config) { c.Rate = 0 },
		"zero batch":     func(c *Config) { c.Batch = 0 },
		"bad spec":       func(c *Config) { c.Spec = "warp(base(corpus=gauss))" },
		"no bound":       func(c *Config) { c.Vectors = 0; c.Duration = 0 },
		"warmup too big": func(c *Config) { c.Warmup = c.Vectors },
		"negative tol":   func(c *Config) { c.Tolerance = -1 },
	} {
		cfg := soakConfig("http://127.0.0.1:1")
		mutate(&cfg)
		if _, err := run(cfg); err == nil {
			t.Errorf("%s: run accepted an invalid config", name)
		}
	}
}

// TestDefaultScenarioParses keeps the flag default honest.
func TestDefaultScenarioParses(t *testing.T) {
	if _, err := scenario.Parse(defaultScenario); err != nil {
		t.Fatal(err)
	}
}
