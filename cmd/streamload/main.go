// Command streamload soaks a live streamadd with deterministic
// adversarial traffic and grades the run against SLOs. A scenario spec
// (internal/scenario grammar) describes the workload — base corpus,
// exact contamination, drift/season/dropout/burst injectors, and
// jitter/late/reorder timing faults — and a fleet of per-stream workers
// replays it over POST /v1/observe at a configured streams × rate ×
// duration envelope:
//
//	streamadd -addr :8417 -channels 4 -model arima &
//	streamload -addr http://127.0.0.1:8417 -streams 64 -rate 50 \
//	    -scenario 'drift(base(corpus=gauss,channels=4,p=0.02,pool=512),kind=abrupt,at=200,shift=4)' \
//	    -duration 30s -slo-p99 750ms -slo-shed-rate 0 -slo-5xx 0 -out BENCH_soak.json
//
// Because the generator owns the ground truth, the report carries
// online detection quality (recall, precision, false-alarm rate) next
// to the usual load-test latency percentiles and shed/drop/error rates.
// The run is bounded by an exact per-stream vector count (rate ×
// duration), so two runs with the same spec and seed send bit-identical
// vectors in the same per-stream order — against a fixed-seed server,
// the detection section of BENCH_soak.json is reproducible.
//
// Exit codes: 0 — run complete, all SLOs met; 1 — run complete, at
// least one SLO violated (violations are listed on stderr and in the
// report); 2 — the run itself failed (bad flags, unreachable target,
// harness error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

// defaultScenario is the abrupt-drift workload the soak recipe reports
// recall on: 4-channel gaussian base, 2% contamination, mean shift of
// 4 sigma at step 200.
const defaultScenario = "drift(base(corpus=gauss,channels=4,p=0.02,pool=512),kind=abrupt,at=200,shift=4)"

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "streamadd base URL; a comma-separated list round-robins requests across cluster nodes and adds a per-target report breakdown")
		spec     = flag.String("scenario", defaultScenario, "scenario spec (internal/scenario grammar)")
		streams  = flag.Int("streams", 64, "concurrent streams")
		rate     = flag.Float64("rate", 50, "vectors per second per stream")
		batch    = flag.Int("batch", 16, "records per POST /v1/observe request")
		vectors  = flag.Int("vectors", 0, "vectors per stream (0: rate × duration)")
		duration = flag.Duration("duration", 30*time.Second, "soak length when -vectors is 0")
		warmup   = flag.Int("warmup", 64, "leading vectors per stream excluded from detection metrics")
		tol      = flag.Int("tolerance", 0, "point-adjust window in vectors: a true anomaly counts as detected if an alert fires within N following vectors, and an alert within N vectors after a true anomaly is not a false alarm (0: exact per-record matching)")
		seed     = flag.Int64("seed", 1, "base seed; per-stream generator and pacer seeds derive from it")
		out      = flag.String("out", "BENCH_soak.json", "report path (empty: stdout only)")

		sloP99    = flag.Duration("slo-p99", 0, "max p99 request latency (0 disables)")
		sloShed   = flag.Float64("slo-shed-rate", -1, "max shed fraction of sent records (negative disables)")
		sloErr    = flag.Float64("slo-error-rate", -1, "max errored fraction of sent records (negative disables)")
		slo5xx    = flag.Int("slo-5xx", -1, "max HTTP 5xx responses (negative disables)")
		sloRecall = flag.Float64("slo-recall", -1, "min recall over evaluated records (negative disables)")
	)
	flag.Parse()

	rep, err := run(Config{
		Addr: *addr, Spec: *spec, Seed: *seed,
		Streams: *streams, Rate: *rate, Batch: *batch,
		Vectors: *vectors, Duration: *duration, Warmup: *warmup,
		Tolerance: *tol,
		SLO: SLO{
			MaxP99:       *sloP99,
			MaxShedRate:  *sloShed,
			MaxErrorRate: *sloErr,
			Max5xx:       *slo5xx,
			MinRecall:    *sloRecall,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamload:", err)
		os.Exit(2)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamload:", err)
		os.Exit(2)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "streamload:", err)
			os.Exit(2)
		}
	}
	os.Stdout.Write(blob)
	fmt.Fprintf(os.Stderr, "streamload: %d streams × %d vectors in %.1fs — p50 %.2fms p95 %.2fms p99 %.2fms, shed %.4f, errors %.4f, recall %.4f, false alarms %.4f\n",
		rep.Streams, rep.VectorsPerStream, rep.ElapsedSeconds,
		rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.P99Ms,
		rep.Requests.ShedRate, rep.Requests.ErrorRate,
		rep.Detection.Recall, rep.Detection.FalseAlarmRate)
	if !rep.SLO.Pass {
		for _, v := range rep.SLO.Violations {
			fmt.Fprintln(os.Stderr, "streamload: SLO violation:", v)
		}
		os.Exit(1)
	}
}
