package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"streamad/internal/scenario"
	"streamad/internal/server"
)

// Config is one soak run: a scenario spec fanned out over a fleet of
// streams against a live streamadd.
type Config struct {
	// Addr is the target base URL, e.g. http://127.0.0.1:8417. A
	// comma-separated list soaks a cluster: each worker round-robins its
	// requests across all targets, and the report carries a per-target
	// breakdown next to the aggregate.
	Addr string
	// Spec is the scenario spec (internal/scenario grammar). Timing-fault
	// layers (jitter/late/reorder) shape the send schedule.
	Spec string
	// Seed is the base seed: stream i generates from
	// DeriveSeed(Seed, "stream/i") and paces from DeriveSeed(Seed, "pace/i").
	Seed int64
	// Streams is the fleet size; stream ids are soak-0..soak-(n-1).
	Streams int
	// Rate is vectors per second per stream.
	Rate float64
	// Batch is records per POST /v1/observe request.
	Batch int
	// Vectors is the exact per-stream vector count. Zero derives it from
	// Rate·Duration — the count, not the wall clock, bounds the run, so
	// detection metrics stay deterministic for a given spec and seed.
	Vectors  int
	Duration time.Duration
	// Warmup excludes each stream's leading vectors from detection
	// metrics (the detector is still filling its window).
	Warmup int
	// Tolerance is the point-adjust window, in vectors: a true anomaly
	// at index i counts as detected if any alert fires in [i, i+N], and
	// an alert at j is a false alarm only if no true anomaly sits in
	// [j-N, j]. Zero keeps exact per-record matching.
	Tolerance int
	// SLO are the pass/fail gates evaluated over the final report.
	SLO SLO
	// Client overrides the pooled default HTTP client (tests).
	Client *http.Client
}

// SLO are the soak gates. A negative threshold disables its check;
// MaxP99 is disabled at zero.
type SLO struct {
	MaxP99       time.Duration // max p99 request latency
	MaxShedRate  float64       // max shed fraction of sent records
	MaxErrorRate float64       // max errored fraction of sent records
	Max5xx       int           // max HTTP 5xx responses
	MinRecall    float64       // min recall over evaluated records
}

// Report is the BENCH_soak.json document.
//
//streamad:finite-json — every float is routed through finite() or ratio() when the report is assembled.
type Report struct {
	Spec             string       `json:"spec"`
	Seed             int64        `json:"seed"`
	Streams          int          `json:"streams"`
	RatePerStream    float64      `json:"rate_per_stream_hz"`
	BatchRecords     int          `json:"batch_records"`
	VectorsPerStream int          `json:"vectors_per_stream"`
	WarmupVectors    int          `json:"warmup_vectors"`
	ToleranceVectors int          `json:"tolerance_vectors"`
	ElapsedSeconds   float64      `json:"elapsed_seconds"`
	Requests         RequestStats `json:"requests"`
	Latency          LatencyStats `json:"latency"`
	// Targets is the per-target breakdown of a multi-target (cluster)
	// soak, in -addr order; omitted for single-target runs.
	Targets   []TargetReport `json:"targets,omitempty"`
	Detection DetectionStats `json:"detection"`
	SLO       SLOReport      `json:"slo"`
}

// TargetReport is one target's share of a multi-target soak: its request
// outcomes and its own latency percentiles, so a cluster node that is
// slow or erroring stands out instead of hiding in the aggregate.
//
//streamad:finite-json — latencyStats routes every float through finite().
type TargetReport struct {
	URL             string       `json:"url"`
	HTTPRequests    int          `json:"http_requests"`
	TransportErrors int          `json:"transport_errors"`
	HTTP5xx         int          `json:"http_5xx"`
	RecordErrors    int          `json:"record_errors"`
	Latency         LatencyStats `json:"latency"`
}

// RequestStats aggregates wire-level outcomes. Every sent record lands
// in exactly one of scored / not-ready / shed / dropped / errored.
type RequestStats struct {
	HTTPRequests    int     `json:"http_requests"`
	TransportErrors int     `json:"transport_errors"`
	HTTP5xx         int     `json:"http_5xx"`
	RecordsSent     int     `json:"records_sent"`
	RecordsScored   int     `json:"records_scored"`
	RecordsNotReady int     `json:"records_not_ready"`
	RecordsShed     int     `json:"records_shed"`
	RecordsDropped  int     `json:"records_dropped"`
	RecordErrors    int     `json:"record_errors"`
	ShedRate        float64 `json:"shed_rate"`
	ErrorRate       float64 `json:"error_rate"`
}

// LatencyStats summarizes full request round trips (send to last
// response byte), in milliseconds.
type LatencyStats struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// DetectionStats is the online confusion matrix over scored,
// post-warmup records: the generator knows each record's ground-truth
// label, the server's alert bit is the prediction. With a positive
// tolerance the matrix is point-adjusted (see Config.Tolerance);
// Evaluated, TrueAnomalies and Alerts are raw counts either way.
type DetectionStats struct {
	Evaluated      int     `json:"evaluated_records"`
	TrueAnomalies  int     `json:"true_anomalies"`
	Alerts         int     `json:"alerts"`
	TruePositives  int     `json:"true_positives"`
	FalsePositives int     `json:"false_positives"`
	FalseNegatives int     `json:"false_negatives"`
	TrueNegatives  int     `json:"true_negatives"`
	Recall         float64 `json:"recall"`
	Precision      float64 `json:"precision"`
	FalseAlarmRate float64 `json:"false_alarm_rate"`
}

// SLOReport records the gate evaluation; a non-empty Violations list
// makes the process exit non-zero.
type SLOReport struct {
	Violations []string `json:"violations"`
	Pass       bool     `json:"pass"`
}

// soakRecord is one NDJSON request line of POST /v1/observe.
//
//streamad:finite-json — nextBatch zeroes non-finite vector entries before encoding.
type soakRecord struct {
	Stream string    `json:"stream"`
	Vector []float64 `json:"vector"`
}

// run executes one soak and aggregates the report. It returns an error
// only for harness-level failures (bad config, unreachable spec,
// ground-truth accounting mismatch); server misbehavior is data, not an
// error — it lands in the report and the SLO verdict.
//
//streamad:lifecycle — every worker goroutine is joined by wg.Wait before run returns.
func run(cfg Config) (*Report, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("streamload: target address is required")
	}
	if cfg.Streams <= 0 || cfg.Rate <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("streamload: streams (%d), rate (%g) and batch (%d) must be positive",
			cfg.Streams, cfg.Rate, cfg.Batch)
	}
	sc, err := scenario.Parse(cfg.Spec)
	if err != nil {
		return nil, err
	}
	vectors := cfg.Vectors
	if vectors == 0 {
		if cfg.Duration <= 0 {
			return nil, fmt.Errorf("streamload: need a vector count or a positive duration")
		}
		vectors = int(cfg.Rate * cfg.Duration.Seconds())
	}
	if vectors <= 0 {
		return nil, fmt.Errorf("streamload: %d vectors per stream", vectors)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= vectors {
		return nil, fmt.Errorf("streamload: warmup %d must be in [0, %d)", cfg.Warmup, vectors)
	}
	if cfg.Tolerance < 0 {
		return nil, fmt.Errorf("streamload: tolerance %d must be non-negative", cfg.Tolerance)
	}
	var targets []string
	for _, t := range strings.Split(cfg.Addr, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("streamload: target address is required")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Streams + 8,
				MaxIdleConnsPerHost: cfg.Streams + 8,
			},
		}
	}
	interval := time.Duration(float64(cfg.Batch) / cfg.Rate * float64(time.Second))

	workers := make([]*worker, cfg.Streams)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		gen, err := sc.NewStream(scenario.DeriveSeed(cfg.Seed, fmt.Sprintf("stream/%d", i)))
		if err != nil {
			return nil, err
		}
		workers[i] = &worker{
			stream:  fmt.Sprintf("soak-%d", i),
			gen:     gen,
			pacer:   scenario.NewPacer(sc.Timing, interval, scenario.DeriveSeed(cfg.Seed, fmt.Sprintf("pace/%d", i))),
			client:  client,
			targets: targets,
			rr:      i % len(targets), // stagger so the fleet spreads from the first request
			tstats:  make([]targetStats, len(targets)),
			batch:   cfg.Batch,
			total:   vectors,
			warmup:  cfg.Warmup,
			tol:     cfg.Tolerance,
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.drive()
		}(workers[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Spec: cfg.Spec, Seed: cfg.Seed, Streams: cfg.Streams,
		RatePerStream: finite(cfg.Rate), BatchRecords: cfg.Batch,
		VectorsPerStream: vectors, WarmupVectors: cfg.Warmup,
		ToleranceVectors: cfg.Tolerance,
		ElapsedSeconds:   finite(elapsed.Seconds()),
	}
	var lats []time.Duration
	perTarget := make([]targetStats, len(targets))
	for _, w := range workers {
		w.finalize()
		// The generator's exact-contamination contract doubles as a
		// harness self-check: the labels the worker paired with results
		// must match ExactAnomalyCount to the record.
		if want := w.gen.ExactAnomalyCount(vectors); w.anomalies != want {
			return nil, fmt.Errorf("streamload: stream %s drew %d anomalies, generator promises exactly %d — harness bug",
				w.stream, w.anomalies, want)
		}
		addRequests(&rep.Requests, w.rs)
		addDetection(&rep.Detection, w.det)
		lats = append(lats, w.lat...)
		for ti := range w.tstats {
			perTarget[ti].add(&w.tstats[ti])
		}
	}
	if len(targets) > 1 {
		for ti, t := range targets {
			ts := &perTarget[ti]
			rep.Targets = append(rep.Targets, TargetReport{
				URL:             t,
				HTTPRequests:    ts.requests,
				TransportErrors: ts.transportErrors,
				HTTP5xx:         ts.http5xx,
				RecordErrors:    ts.recordErrors,
				Latency:         latencyStats(ts.lat),
			})
		}
	}
	rep.Requests.ShedRate = ratio(rep.Requests.RecordsShed, rep.Requests.RecordsSent)
	rep.Requests.ErrorRate = ratio(rep.Requests.RecordErrors, rep.Requests.RecordsSent)
	d := &rep.Detection
	d.Recall = ratio(d.TruePositives, d.TruePositives+d.FalseNegatives)
	d.Precision = ratio(d.TruePositives, d.TruePositives+d.FalsePositives)
	d.FalseAlarmRate = ratio(d.FalsePositives, d.FalsePositives+d.TrueNegatives)
	rep.Latency = latencyStats(lats)
	rep.SLO = evaluateSLO(cfg.SLO, rep)
	return rep, nil
}

// worker drives one stream for the whole soak: draws scenario batches,
// paces them through the Pacer (applying jitter/late/reorder faults),
// posts them, and pairs every response record with its ground-truth
// label by request order.
type worker struct {
	stream  string
	gen     scenario.Stream
	pacer   *scenario.Pacer
	client  *http.Client
	targets []string
	rr      int           // round-robin cursor over targets
	tstats  []targetStats // per-target outcomes, parallel to targets
	batch   int
	total   int
	warmup  int
	tol     int

	sent      int // vectors drawn so far
	anomalies int // ground-truth anomalies drawn so far

	lat []time.Duration
	rs  RequestStats
	det DetectionStats
	evs []tolEvent // deferred records awaiting point-adjust matching (tol > 0)
}

// tolEvent is one evaluated record held back for tolerant matching: the
// confusion cell depends on neighbours that may not have been scored
// yet, so classification waits until the stream's quota is exhausted.
type tolEvent struct {
	idx   int
	truth bool
	alert bool
}

func (w *worker) drive() {
	body, labels, base := w.nextBatch()
	for body != nil {
		plan := w.pacer.Plan()
		if plan.Gap > 0 {
			time.Sleep(plan.Gap)
		}
		if plan.SwapWithNext {
			// The reorder fault: the successor batch jumps the queue, so
			// the server admits (and sequence-numbers) its records first.
			if nb, nl, nbase := w.nextBatch(); nb != nil {
				w.send(nb, nl, nbase)
			}
		}
		w.send(body, labels, base)
		body, labels, base = w.nextBatch()
	}
}

// nextBatch draws up to batch vectors from the scenario, zeroing
// non-finite values (JSON cannot carry NaN; the dropout nan mode is an
// in-process fault), and returns the encoded NDJSON body, the
// per-record ground-truth labels, and the stream index of the first
// record. A nil body means the stream's quota is exhausted.
func (w *worker) nextBatch() ([]byte, []bool, int) {
	if w.sent >= w.total {
		return nil, nil, 0
	}
	n := w.batch
	if rem := w.total - w.sent; n > rem {
		n = rem
	}
	first := w.sent
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	labels := make([]bool, n)
	vec := make([]float64, w.gen.Channels())
	for i := 0; i < n; i++ {
		v, anom := w.gen.Next()
		for c, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			vec[c] = x
		}
		labels[i] = anom
		if anom {
			w.anomalies++
		}
		enc.Encode(soakRecord{Stream: w.stream, Vector: vec})
	}
	w.sent += n
	return buf.Bytes(), labels, first
}

// send posts one batch to the next round-robin target and consumes the
// NDJSON response, pairing the i-th result with the i-th record's label.
// The latency sample covers the full round trip: send to last response
// byte. Outcomes are recorded twice — into the aggregate and into the
// chosen target's row.
func (w *worker) send(body []byte, labels []bool, first int) {
	ti := w.rr % len(w.targets)
	w.rr++
	ts := &w.tstats[ti]
	errsBefore := w.rs.RecordErrors
	defer func() { ts.recordErrors += w.rs.RecordErrors - errsBefore }()
	w.rs.HTTPRequests++
	ts.requests++
	w.rs.RecordsSent += len(labels)
	t0 := time.Now()
	resp, err := w.client.Post(w.targets[ti]+"/v1/observe", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		w.rs.TransportErrors++
		ts.transportErrors++
		w.rs.RecordErrors += len(labels)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			w.rs.HTTP5xx++
			ts.http5xx++
		}
		w.rs.RecordErrors += len(labels)
		io.Copy(io.Discard, resp.Body)
		w.sample(ts, time.Since(t0))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	i := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var res server.BatchResult
		if err := json.Unmarshal(line, &res); err != nil || i >= len(labels) {
			w.rs.RecordErrors++
			i++
			continue
		}
		w.record(res, labels[i], first+i)
		i++
	}
	w.sample(ts, time.Since(t0))
	if err := sc.Err(); err != nil {
		w.rs.TransportErrors++
		ts.transportErrors++
	}
	for ; i < len(labels); i++ {
		w.rs.RecordErrors++ // the response ended short of one result per record
	}
}

// sample records one round-trip latency in the aggregate and the
// per-target series.
func (w *worker) sample(ts *targetStats, d time.Duration) {
	w.lat = append(w.lat, d)
	ts.lat = append(ts.lat, d)
}

// targetStats is one worker's outcomes against one target.
type targetStats struct {
	requests        int
	transportErrors int
	http5xx         int
	recordErrors    int
	lat             []time.Duration
}

func (t *targetStats) add(src *targetStats) {
	t.requests += src.requests
	t.transportErrors += src.transportErrors
	t.http5xx += src.http5xx
	t.recordErrors += src.recordErrors
	t.lat = append(t.lat, src.lat...)
}

// record classifies one response record and, for scored post-warmup
// records, updates the confusion matrix against the ground truth.
func (w *worker) record(res server.BatchResult, truth bool, idx int) {
	switch {
	case res.Error != "":
		w.rs.RecordErrors++
	case res.Shed:
		w.rs.RecordsShed++
	case res.Dropped:
		w.rs.RecordsDropped++
	case !res.Ready:
		w.rs.RecordsNotReady++
	default:
		w.rs.RecordsScored++
		if idx < w.warmup {
			return
		}
		w.det.Evaluated++
		if truth {
			w.det.TrueAnomalies++
		}
		if res.Alert {
			w.det.Alerts++
		}
		if w.tol > 0 {
			w.evs = append(w.evs, tolEvent{idx: idx, truth: truth, alert: res.Alert})
			return
		}
		switch {
		case res.Alert && truth:
			w.det.TruePositives++
		case res.Alert:
			w.det.FalsePositives++
		case truth:
			w.det.FalseNegatives++
		default:
			w.det.TrueNegatives++
		}
	}
}

// finalize classifies the deferred records with point-adjust matching:
// a truth at i is a true positive iff an alert landed in [i, i+tol]; an
// alert on a normal record at j is forgiven (a true negative) iff a
// truth sits in [j-tol, j]. With tol == 0 nothing was deferred and this
// is a no-op — the inline path already produced the exact-match matrix,
// and the two agree at tol == 0 because each window collapses to the
// record itself. Events are re-sorted because the reorder timing fault
// can deliver batches out of stream order.
func (w *worker) finalize() {
	if len(w.evs) == 0 {
		return
	}
	sort.Slice(w.evs, func(i, j int) bool { return w.evs[i].idx < w.evs[j].idx })
	var truths, alerts []int
	for _, e := range w.evs {
		if e.truth {
			truths = append(truths, e.idx)
		}
		if e.alert {
			alerts = append(alerts, e.idx)
		}
	}
	for _, e := range w.evs {
		if e.truth {
			k := sort.SearchInts(alerts, e.idx)
			if k < len(alerts) && alerts[k] <= e.idx+w.tol {
				w.det.TruePositives++
			} else {
				w.det.FalseNegatives++
			}
			continue
		}
		if !e.alert {
			w.det.TrueNegatives++
			continue
		}
		k := sort.SearchInts(truths, e.idx-w.tol)
		if k < len(truths) && truths[k] <= e.idx {
			w.det.TrueNegatives++
		} else {
			w.det.FalsePositives++
		}
	}
	w.evs = nil
}

func addRequests(dst *RequestStats, src RequestStats) {
	dst.HTTPRequests += src.HTTPRequests
	dst.TransportErrors += src.TransportErrors
	dst.HTTP5xx += src.HTTP5xx
	dst.RecordsSent += src.RecordsSent
	dst.RecordsScored += src.RecordsScored
	dst.RecordsNotReady += src.RecordsNotReady
	dst.RecordsShed += src.RecordsShed
	dst.RecordsDropped += src.RecordsDropped
	dst.RecordErrors += src.RecordErrors
}

func addDetection(dst *DetectionStats, src DetectionStats) {
	dst.Evaluated += src.Evaluated
	dst.TrueAnomalies += src.TrueAnomalies
	dst.Alerts += src.Alerts
	dst.TruePositives += src.TruePositives
	dst.FalsePositives += src.FalsePositives
	dst.FalseNegatives += src.FalseNegatives
	dst.TrueNegatives += src.TrueNegatives
}

// latencyStats sorts the samples and extracts the report percentiles.
func latencyStats(lats []time.Duration) LatencyStats {
	ls := LatencyStats{Requests: len(lats)}
	if len(lats) == 0 {
		return ls
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	ms := func(d time.Duration) float64 { return finite(float64(d) / 1e6) }
	ls.P50Ms = ms(pct(lats, 0.50))
	ls.P95Ms = ms(pct(lats, 0.95))
	ls.P99Ms = ms(pct(lats, 0.99))
	ls.MaxMs = ms(lats[len(lats)-1])
	ls.MeanMs = ms(sum / time.Duration(len(lats)))
	return ls
}

// pct is the nearest-rank percentile of a sorted sample.
func pct(sorted []time.Duration, p float64) time.Duration {
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// evaluateSLO checks the configured gates against the finished report.
func evaluateSLO(slo SLO, rep *Report) SLOReport {
	var v []string
	if slo.MaxP99 > 0 {
		if maxMs := float64(slo.MaxP99) / 1e6; rep.Latency.P99Ms > maxMs {
			v = append(v, fmt.Sprintf("p99 latency %.2fms exceeds SLO %v", rep.Latency.P99Ms, slo.MaxP99))
		}
	}
	if slo.MaxShedRate >= 0 && rep.Requests.ShedRate > slo.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.4f exceeds SLO %.4f", rep.Requests.ShedRate, slo.MaxShedRate))
	}
	if slo.MaxErrorRate >= 0 && rep.Requests.ErrorRate > slo.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f exceeds SLO %.4f", rep.Requests.ErrorRate, slo.MaxErrorRate))
	}
	if slo.Max5xx >= 0 && rep.Requests.HTTP5xx > slo.Max5xx {
		v = append(v, fmt.Sprintf("%d HTTP 5xx responses exceed SLO %d", rep.Requests.HTTP5xx, slo.Max5xx))
	}
	if slo.MinRecall >= 0 && rep.Detection.Recall < slo.MinRecall {
		v = append(v, fmt.Sprintf("recall %.4f below SLO %.4f", rep.Detection.Recall, slo.MinRecall))
	}
	return SLOReport{Violations: v, Pass: len(v) == 0}
}

// ratio is num/den with an explicit zero-denominator guard, so the
// report never carries NaN into JSON.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return finite(float64(num) / float64(den))
}

// finite zeroes non-finite values before they reach the JSON report.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}
