// Command streamad runs a streaming anomaly detector over a CSV time
// series (one column per channel, optional trailing "label" column) and
// writes per-step anomaly scores. With labels present it also reports the
// evaluation metrics.
//
// Usage:
//
//	streamad -model usad -task1 sw -task2 musigma -score likelihood data.csv
//	streamad -spec 'ensemble(arima+sw+kswin, usad+ares+regular; agg=median)' data.csv
//	streamad -gen daphnet -out stream.csv        # generate a demo corpus file
package main

import (
	"flag"
	"fmt"
	"os"

	"streamad"
	"streamad/internal/dataset"
	"streamad/internal/metrics"
)

func main() {
	var (
		spec      = flag.String("spec", "", `pipeline or ensemble spec, e.g. "arima+sw+kswin" or "ensemble(arima+sw+kswin, usad+ares+regular; agg=median)"; overrides -model/-task1/-task2/-score`)
		modelName = flag.String("model", "usad", "model: arima|pcb|ae|usad|nbeats|var")
		task1Name = flag.String("task1", "sw", "training-set strategy: sw|ures|ares")
		task2Name = flag.String("task2", "musigma", "drift strategy: musigma|kswin|regular")
		scoreName = flag.String("score", "likelihood", "anomaly score: avg|likelihood|raw")
		window    = flag.Int("w", 32, "data representation length")
		train     = flag.Int("m", 200, "training set size")
		warmup    = flag.Int("warmup", 0, "warmup feature vectors (default m)")
		seed      = flag.Int64("seed", 1, "random seed")
		threshold = flag.Float64("threshold", 0, "decision threshold (0 = calibrate from stream)")
		gen       = flag.String("gen", "", "generate a corpus CSV instead: daphnet|exathlon|smd")
		out       = flag.String("out", "", "output file for -gen (default stdout)")
		quiet     = flag.Bool("q", false, "suppress per-step score output")
	)
	flag.Parse()

	if *gen != "" {
		if err := generate(*gen, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: streamad [flags] data.csv  (or -gen corpus)")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *spec, *modelName, *task1Name, *task2Name, *scoreName,
		*window, *train, *warmup, *seed, *threshold, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func generate(corpus, out string) error {
	var c *dataset.Corpus
	cfg := dataset.FastConfig(11)
	cfg.SeriesCount = 1
	switch corpus {
	case "daphnet":
		c = dataset.Daphnet(cfg)
	case "exathlon":
		c = dataset.Exathlon(cfg)
	case "smd":
		c = dataset.SMD(cfg)
	default:
		return fmt.Errorf("unknown corpus %q (want daphnet, exathlon or smd)", corpus)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, c.Series[0])
}

func run(path, spec, model, task1, task2, score string, window, train, warmup int, seed int64, threshold float64, quiet bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	series, err := dataset.ReadCSV(f, path)
	if err != nil {
		return err
	}
	base := streamad.Config{
		Channels: series.Channels(), Window: window, TrainSize: train,
		WarmupVectors: warmup, Seed: seed,
	}
	var det streamad.StreamDetector
	if spec != "" {
		det, err = streamad.NewFromSpec(spec, base)
	} else {
		mk, perr := streamad.ParseModelKind(model)
		if perr != nil {
			return perr
		}
		t1, perr := streamad.ParseTask1(task1)
		if perr != nil {
			return perr
		}
		t2, perr := streamad.ParseTask2(task2)
		if perr != nil {
			return perr
		}
		sk, perr := streamad.ParseScoreKind(score)
		if perr != nil {
			return perr
		}
		cfg := base
		cfg.Model, cfg.Task1, cfg.Task2, cfg.Score = mk, t1, t2, sk
		det, err = streamad.New(cfg)
	}
	if err != nil {
		return err
	}
	if c, ok := det.(interface{ Close() }); ok {
		defer c.Close()
	}
	scores, valid := det.Run(series.Data)
	if threshold == 0 {
		threshold = metrics.CalibrateThreshold(scores, valid, 0.3, 0.99)
		fmt.Fprintf(os.Stderr, "calibrated threshold: %.5f\n", threshold)
	}
	if !quiet {
		fmt.Println("t\tscore\tanomaly")
		for t := range scores {
			if !valid[t] {
				continue
			}
			flag := 0
			if scores[t] >= threshold {
				flag = 1
			}
			fmt.Printf("%d\t%.5f\t%d\n", t, scores[t], flag)
		}
	}
	hasLabels := false
	for _, l := range series.Labels {
		if l {
			hasLabels = true
			break
		}
	}
	if hasLabels {
		sum := metrics.Evaluate(scores, series.Labels, valid, threshold)
		fmt.Fprintf(os.Stderr, "precision=%.3f recall=%.3f pr-auc=%.3f vus=%.3f nab=%.3f finetunes=%d\n",
			sum.Precision, sum.Recall, sum.AUC, sum.VUS, sum.NAB, det.FineTunes())
	}
	return nil
}
