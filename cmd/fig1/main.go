// Command fig1 reproduces the Figure 1 fine-tuning experiment: after the
// first drift-triggered fine-tuning session of a USAD + sliding-window +
// μ/σ-Change detector, an artificial anomaly is injected into the stream
// and both the fine-tuned and the pre-drift model score it. The output is
// the plottable trace plus the error-bar summary; the fine-tuned model's
// baseline-to-peak gap should be clearly larger.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamad/internal/bench"
)

func main() {
	var (
		profile   = flag.String("profile", "fast", "run scale: fast or paper")
		magnitude = flag.Float64("magnitude", 3, "anomaly magnitude in stream σ")
		start     = flag.Int("start", 90, "anomaly start relative to the fine-tune")
		end       = flag.Int("end", 110, "anomaly end relative to the fine-tune")
	)
	flag.Parse()
	var p bench.Profile
	switch *profile {
	case "fast":
		p = bench.Fig1Profile()
	case "paper":
		p = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want fast or paper)\n", *profile)
		os.Exit(2)
	}
	res, err := bench.FinetuneExperimentAnySeed(bench.Fig1Config{
		Profile:      p,
		AnomalyStart: *start,
		AnomalyEnd:   *end,
		Magnitude:    *magnitude,
	}, 11, 20)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bench.WriteFig1(os.Stdout, res)
}
