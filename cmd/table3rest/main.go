// Command table3rest regenerates the remaining SMD rows of the Table III
// grid (the heaviest cells), cheapest models first, so partial output is
// still useful. It exists alongside cmd/table3 for incremental reruns.
package main

import (
	"fmt"
	"os"

	"streamad"
	"streamad/internal/bench"
	"streamad/internal/dataset"
	"streamad/internal/metrics"
)

func main() {
	p := bench.Fast()
	corpus := dataset.SMD(p.Data)
	type cell struct {
		m  streamad.ModelKind
		t1 streamad.Task1
		t2 streamad.Task2
	}
	cells := []cell{
		{streamad.ModelPCBIForest, streamad.TaskSlidingWindow, streamad.TaskKSWIN},
		{streamad.ModelPCBIForest, streamad.TaskAnomalyReservoir, streamad.TaskKSWIN},
		{streamad.ModelNBEATS, streamad.TaskSlidingWindow, streamad.TaskMuSigma},
		{streamad.ModelNBEATS, streamad.TaskSlidingWindow, streamad.TaskKSWIN},
		{streamad.ModelNBEATS, streamad.TaskUniformReservoir, streamad.TaskMuSigma},
		{streamad.ModelNBEATS, streamad.TaskUniformReservoir, streamad.TaskKSWIN},
		{streamad.ModelNBEATS, streamad.TaskAnomalyReservoir, streamad.TaskMuSigma},
		{streamad.ModelNBEATS, streamad.TaskAnomalyReservoir, streamad.TaskKSWIN},
		{streamad.ModelUSAD, streamad.TaskSlidingWindow, streamad.TaskKSWIN},
		{streamad.ModelUSAD, streamad.TaskUniformReservoir, streamad.TaskMuSigma},
		{streamad.ModelUSAD, streamad.TaskUniformReservoir, streamad.TaskKSWIN},
		{streamad.ModelUSAD, streamad.TaskAnomalyReservoir, streamad.TaskMuSigma},
		{streamad.ModelUSAD, streamad.TaskAnomalyReservoir, streamad.TaskKSWIN},
	}
	for _, c := range cells {
		combo := streamad.Combo{Model: c.m, Task1: c.t1, Task2: c.t2}
		var sums []metrics.Summary
		for _, sk := range []streamad.ScoreKind{streamad.ScoreAverage, streamad.ScoreLikelihood} {
			sum, err := bench.RunSeries(combo, sk, p, corpus.Series[0])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sums = append(sums, sum)
		}
		avg := metrics.Summary{
			Precision: (sums[0].Precision + sums[1].Precision) / 2,
			Recall:    (sums[0].Recall + sums[1].Recall) / 2,
			AUC:       (sums[0].AUC + sums[1].AUC) / 2,
			VUS:       (sums[0].VUS + sums[1].VUS) / 2,
			NAB:       (sums[0].NAB + sums[1].NAB) / 2,
		}
		fmt.Printf("%-14s %-5s %-5s %-9s  %6.2f %6.2f %6.2f %6.2f %9.2f\n",
			combo.Model, combo.Task1, combo.Task2, "smd",
			avg.Precision, avg.Recall, avg.AUC, avg.VUS, avg.NAB)
	}
}
