// Command table3 regenerates the Table III results grid: every evaluated
// algorithm combination on the three benchmark corpora, reporting
// range-based precision / recall / PR-AUC, VUS and the NAB score, plus
// the per-anomaly-score aggregate rows.
//
// The default -profile=fast runs a scaled-down configuration in minutes;
// -profile=paper approximates the paper's scale (w=100, 5000-step warmup,
// per-step KSWIN) and takes much longer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"streamad/internal/bench"
	"streamad/internal/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "fast", "run scale: fast or paper")
		seed    = flag.Int64("seed", 11, "corpus seed")
		verbose = flag.Bool("v", false, "print per-combination progress")
	)
	flag.Parse()
	var p bench.Profile
	switch *profile {
	case "fast":
		p = bench.Fast()
	case "paper":
		p = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want fast or paper)\n", *profile)
		os.Exit(2)
	}
	p.Data.Seed = *seed
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	corpora := dataset.All(p.Data)
	res, err := bench.RunGrid(p, corpora, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Table III — experimental results (profile=%s)\n\n", *profile)
	res.WriteTable(os.Stdout)
}
